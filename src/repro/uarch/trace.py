"""Pipeline tracing: per-instruction lifecycle records.

Attach a :class:`PipelineTracer` to a processor to capture, for every
*committed* group, the cycles at which it was fetched, dispatched,
issued (per copy), completed (per copy) and committed — plus rewind
events.  The formatter renders the classic pipeline diagram used to
eyeball scheduling behaviour:

    seq      pc  instruction            F     D     I0/I1    W0/W1    C
    ...

Tracing is opt-in (``processor.attach_tracer(...)``) and adds one list
append per commit, so it is safe to leave on for small runs and off for
benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.disasm import format_instruction


@dataclass(frozen=True)
class TraceRecord:
    """Lifecycle of one committed architectural instruction."""

    gseq: int
    pc: int
    text: str
    fetch_cycle: int
    dispatch_cycle: int
    issue_cycles: tuple     # per redundant copy (None: never issued)
    done_cycles: tuple      # per redundant copy
    fu_units: tuple         # physical unit index per copy
    commit_cycle: int

    @property
    def latency(self):
        """Fetch-to-commit latency in cycles."""
        return self.commit_cycle - self.fetch_cycle


@dataclass(frozen=True)
class RewindRecord:
    """One detected-fault rewind."""

    cycle: int
    restart_pc: int


class PipelineTracer:
    """Collects commit-time lifecycle records and rewind events."""

    def __init__(self, limit=None):
        self.records = []
        self.rewinds = []
        self.limit = limit

    def on_commit(self, group, cycle):
        if self.limit is not None and len(self.records) >= self.limit:
            return
        copies = group.copies
        self.records.append(TraceRecord(
            gseq=group.gseq,
            pc=group.pc,
            text=format_instruction(group.inst),
            fetch_cycle=group.fetch_cycle,
            dispatch_cycle=group.dispatch_cycle,
            issue_cycles=tuple(entry.issue_cycle for entry in copies),
            done_cycles=tuple(entry.done_cycle for entry in copies),
            fu_units=tuple(entry.fu_unit for entry in copies),
            commit_cycle=cycle))

    def on_rewind(self, cycle, restart_pc):
        self.rewinds.append(RewindRecord(cycle=cycle,
                                         restart_pc=restart_pc))

    def format_table(self, last=30):
        """Render the most recent ``last`` committed instructions."""
        rows = self.records[-last:]
        if not rows:
            return "(no trace records)"
        header = ("%6s %6s  %-24s %6s %6s %-13s %-13s %6s"
                  % ("seq", "pc", "instruction", "F", "D", "issue",
                     "done", "C"))
        lines = [header, "-" * len(header)]
        for record in rows:
            issues = "/".join("-" if c is None else str(c)
                              for c in record.issue_cycles)
            dones = "/".join("-" if c is None else str(c)
                             for c in record.done_cycles)
            lines.append("%6d %6d  %-24s %6d %6d %-13s %-13s %6d"
                         % (record.gseq, record.pc, record.text[:24],
                            record.fetch_cycle, record.dispatch_cycle,
                            issues, dones, record.commit_cycle))
        if self.rewinds:
            lines.append("rewinds: %s"
                         % ", ".join("@%d->pc %d" % (r.cycle,
                                                     r.restart_pc)
                                     for r in self.rewinds[-8:]))
        return "\n".join(lines)

    def average_commit_latency(self):
        """Mean fetch-to-commit latency over traced instructions."""
        if not self.records:
            return 0.0
        return (sum(record.latency for record in self.records)
                / len(self.records))
