"""Decoded-program caches shared across simulations.

Two layers, both transparent to callers:

* :func:`decode_program` — a per-program table of :class:`DecodedInst`
  records, one per static instruction, with every piece of static
  metadata the pipeline's hot loop needs (opcode info flags, functional
  unit class, execution latency) resolved up front.  The timing
  simulator consults this table instead of chasing ``inst.info``
  property lookups and latency dispatch for every dynamic instance.
  Tables are memoized on the :class:`~repro.program.image.Program`
  object itself, keyed by the machine's latency parameters, so all
  trials of a campaign that share a program share one table.
* :func:`cached_workload` — a per-process cache of generated synthetic
  workloads keyed by ``(name, seed)``.  Workload generation is
  deterministic in that key and every simulator copies the data image,
  so rebuilding a program per trial would be pure waste.  (Moved here
  from ``repro.campaign.outcome`` so non-campaign callers can share
  it.)
"""

from __future__ import annotations

from collections import OrderedDict

from ..functional.kernel import _BRANCH_CONDITIONS, _VALUE_HANDLERS
from ..isa.opcodes import OP_INFO, FuClass, Kind

#: Name of the memo attribute stashed on Program instances.
_MEMO_ATTR = "_decoded_memo"


class DecodedInst:
    """One static instruction with all hot-loop metadata precomputed.

    A flattened join of :class:`~repro.isa.instruction.Instruction`,
    its :class:`~repro.isa.opcodes.OpInfo` and the machine's latency
    table.  ``qidx`` is the issue-queue index: the ``int()`` of the
    functional-unit class the entry issues to (memory operations
    generate their address on an integer ALU).
    """

    __slots__ = ("inst", "info", "op", "rd", "rs1", "rs2", "imm", "kind",
                 "latency", "unpipelined", "qidx", "writes_reg",
                 "fp_dest", "reads_rs1", "reads_rs2", "is_mem", "is_load",
                 "is_store", "is_control", "is_branch", "is_halt",
                 "value_fn", "branch_fn")

    def __init__(self, inst, latency):
        info = OP_INFO[inst.op]
        kind = info.kind
        self.inst = inst
        self.info = info
        self.op = inst.op
        self.rd = inst.rd
        self.rs1 = inst.rs1
        self.rs2 = inst.rs2
        self.imm = inst.imm
        self.kind = kind
        self.latency = latency
        self.unpipelined = info.unpipelined
        self.qidx = int(FuClass.INT_ALU if info.is_mem else info.fu)
        self.writes_reg = info.writes_reg
        self.fp_dest = info.fp_dest
        self.reads_rs1 = info.reads_rs1
        self.reads_rs2 = info.reads_rs2
        self.is_mem = info.is_mem
        self.is_load = kind == Kind.LOAD
        self.is_store = kind == Kind.STORE
        self.is_control = info.is_control
        self.is_branch = kind == Kind.BRANCH
        self.is_halt = kind == Kind.HALT
        # Direct references to the semantic-kernel handlers, so the
        # execute path skips the per-op dict dispatch.
        self.value_fn = _VALUE_HANDLERS.get(inst.op)
        self.branch_fn = _BRANCH_CONDITIONS.get(inst.op)

    def __repr__(self):
        return "<DecodedInst %s lat=%d q=%d>" % (self.inst, self.latency,
                                                 self.qidx)


def latency_signature(config):
    """The tuple of latency parameters a decode table depends on."""
    return (config.lat_int_alu, config.lat_int_mult, config.lat_int_div,
            config.lat_fp_add, config.lat_fp_mult, config.lat_fp_div,
            config.lat_fp_sqrt, config.lat_agen)


def decode_program(program, config):
    """The :class:`DecodedInst` table for ``program`` under ``config``.

    Memoized on the program object (``Program`` is immutable), keyed by
    the config's latency signature; two machine configs that agree on
    latencies share one table.
    """
    memo = getattr(program, _MEMO_ATTR, None)
    if memo is None:
        memo = {}
        # Program is a frozen dataclass; stash the memo around its
        # immutability guard (the decode table is derived state, not a
        # field, and never observable through the public API).
        object.__setattr__(program, _MEMO_ATTR, memo)
    key = latency_signature(config)
    table = memo.get(key)
    if table is None:
        op_latency = config.op_latency
        table = [DecodedInst(inst, op_latency(inst.op))
                 for inst in program.text]
        memo[key] = table
    return table


#: Per-process LRU cache of generated workload programs.  Bounded so a
#: long multi-cell campaign cannot grow it without limit; generous
#: enough that any realistic grid's working set fits.
_WORKLOAD_CACHE_LIMIT = 32
_WORKLOAD_CACHE = OrderedDict()
_WORKLOAD_CACHE_COUNTERS = {"hits": 0, "misses": 0, "evictions": 0}


def cached_workload(name, seed=1_000_003):
    """Build (or reuse) the named synthetic workload program.

    Generation is deterministic in ``(name, seed)`` and simulators copy
    the data image into their own memory, so one shared program per
    process is safe.
    """
    key = (name, seed)
    program = _WORKLOAD_CACHE.get(key)
    if program is not None:
        _WORKLOAD_CACHE.move_to_end(key)
        _WORKLOAD_CACHE_COUNTERS["hits"] += 1
        return program
    _WORKLOAD_CACHE_COUNTERS["misses"] += 1
    # Imported lazily: repro.workloads itself builds Programs, so a
    # module-level import would be circular.
    from ..workloads.generator import build_workload
    program = build_workload(name, seed=seed)
    _WORKLOAD_CACHE[key] = program
    while len(_WORKLOAD_CACHE) > _WORKLOAD_CACHE_LIMIT:
        _WORKLOAD_CACHE.popitem(last=False)
        _WORKLOAD_CACHE_COUNTERS["evictions"] += 1
    return program


def workload_cache_stats():
    """Size, limit and hit/miss/eviction counters of the workload
    cache."""
    stats = dict(_WORKLOAD_CACHE_COUNTERS)
    stats["size"] = len(_WORKLOAD_CACHE)
    stats["limit"] = _WORKLOAD_CACHE_LIMIT
    return stats


def clear_caches():
    """Drop all cached workloads and decode tables (for tests)."""
    _WORKLOAD_CACHE.clear()
    for name in _WORKLOAD_CACHE_COUNTERS:
        _WORKLOAD_CACHE_COUNTERS[name] = 0
