"""Program images, loaders and decoded-program caches."""

from .cache import (DecodedInst, cached_workload, clear_caches,
                    decode_program)
from .image import Program
from .loader import (load_program, program_from_dict, program_to_dict,
                     save_program)

__all__ = ["Program", "DecodedInst", "cached_workload", "clear_caches",
           "decode_program", "load_program", "program_from_dict",
           "program_to_dict", "save_program"]
