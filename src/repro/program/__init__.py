"""Program images and loaders."""

from .image import Program
from .loader import (load_program, program_from_dict, program_to_dict,
                     save_program)

__all__ = ["Program", "load_program", "program_from_dict",
           "program_to_dict", "save_program"]
