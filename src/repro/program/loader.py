"""Program serialisation: save/load program images as JSON.

Uses the binary instruction encoding of :mod:`repro.isa.encoding`, so a
saved file is a faithful machine-level image (64-bit instruction words +
data segment) rather than a pickle of Python objects.  Useful for
shipping generated workloads between runs or inspecting them with
external tools.
"""

from __future__ import annotations

import json

from ..errors import SimulationError
from ..isa.encoding import decode, encode
from .image import Program

FORMAT_VERSION = 1


def program_to_dict(program):
    """Serialisable dict form of a program image."""
    return {
        "format": FORMAT_VERSION,
        "name": program.name,
        "entry": program.entry,
        "text": [encode(inst) for inst in program.text],
        "data": list(program.data),
    }


def program_from_dict(payload):
    """Rebuild a :class:`Program` from :func:`program_to_dict` output."""
    if payload.get("format") != FORMAT_VERSION:
        raise SimulationError("unsupported program format: %r"
                              % payload.get("format"))
    text = [decode(word) for word in payload["text"]]
    return Program(name=payload["name"], text=text,
                   data=list(payload["data"]),
                   entry=payload.get("entry", 0))


def save_program(program, path):
    """Write a program image to ``path`` as JSON."""
    with open(path, "w") as handle:
        json.dump(program_to_dict(program), handle, sort_keys=True)
    return path


def load_program(path):
    """Read a program image previously written by :func:`save_program`."""
    with open(path) as handle:
        payload = json.load(handle)
    return program_from_dict(payload)
