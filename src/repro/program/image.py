"""Program image: the loadable unit consumed by every simulator.

A :class:`Program` is a decoded text segment (list of
:class:`~repro.isa.instruction.Instruction`) plus an initial data segment
(list of numeric memory words, loaded at word address 0) and an entry
point (instruction index).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Program:
    """An executable program image."""

    name: str
    text: list
    data: list = field(default_factory=list)
    entry: int = 0

    def __post_init__(self):
        if not self.text:
            raise ValueError("program has an empty text segment")
        if not 0 <= self.entry < len(self.text):
            raise ValueError("entry point %d outside text segment"
                             % self.entry)

    def __len__(self):
        return len(self.text)

    @property
    def static_instruction_count(self):
        """Number of static instructions in the text segment."""
        return len(self.text)

    def fetch(self, pc):
        """Instruction at instruction-index ``pc`` or ``None`` if outside."""
        if 0 <= pc < len(self.text):
            return self.text[pc]
        return None

    def disassemble(self):
        """Full text-segment disassembly as a string."""
        from ..isa.disasm import disassemble
        return disassemble(self.text)
