"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class AssemblerError(ReproError):
    """Raised when assembly source cannot be assembled."""

    def __init__(self, message, line_number=None):
        self.line_number = line_number
        if line_number is not None:
            message = "line %d: %s" % (line_number, message)
        super().__init__(message)


class EncodingError(ReproError):
    """Raised when an instruction cannot be encoded or decoded."""


class SimulationError(ReproError):
    """Raised when a simulator reaches an inconsistent state."""


class ConfigError(ReproError):
    """Raised when a machine configuration is invalid."""


class OrchestratorError(ReproError):
    """Raised when a multi-shard campaign cannot be driven to
    completion (a shard worker keeps dying past its restart budget)."""


class OrchestratorStopped(ReproError):
    """Raised when a running orchestrator's ``stop_requested`` hook
    asked it to abandon the campaign (service cancellation or drain).
    Deliberately NOT an :class:`OrchestratorError`: a stop is an
    honoured request, not a failure, and the shard stores keep every
    completed record for a later resume."""


class ResilienceError(ReproError):
    """Base class for fault-tolerance layer failures (retry budgets
    exhausted, unrecoverable pool state, hung-trial limits)."""


class TrialHangError(ResilienceError):
    """Raised when a trial keeps hanging or dying across pool rebuilds
    past its retry budget.  Distinct from the simulated ``timeout``
    outcome: that one is a *result* (the injected fault wedged the
    simulated machine); this one means the host-side worker process
    never came back — an infrastructure failure."""


class HistoryError(ReproError):
    """Raised when the bench history file (``BENCH_simulator.json``)
    cannot be loaded, validated or resolved — a torn write, a hand
    edit that broke an entry's schema, or a version reference that
    does not exist.  The performance version system refuses to guess:
    silently dropping history would defeat regression gating."""


class ServiceError(ReproError):
    """Raised when the campaign service cannot honour a request
    (unknown job, invalid submission, service not running)."""


class QuotaError(ServiceError):
    """Raised when a tenant's submission exceeds its queue quota."""
