#!/usr/bin/env python3
"""A miniature Figure-5 study on a subset of the benchmark suite.

Generates three synthetic SPEC-like workloads with very different
bottleneck structures, verifies their dynamic instruction mixes against
the paper's Table 2, and compares SS-1 / Static-2 / SS-2 steady-state
IPC — reproducing the paper's observation that ILP-limited codes (go)
pay almost nothing for redundancy while FU-limited codes (vortex, art)
pay up to ~45%.

Run:  python examples/spec_workload_study.py
"""

from repro.harness import figure5_rows, format_figure5_table
from repro.workloads import (build_workload, format_mix_table,
                             get_profile, measure_mix)

BENCHMARKS = ("vortex", "go", "art")
INSTRUCTIONS = 12_000


def main():
    print("Dynamic instruction mixes (target = paper's Table 2):\n")
    rows = []
    for name in BENCHMARKS:
        program = build_workload(name)
        row = measure_mix(program, instructions=INSTRUCTIONS)
        rows.append(row)
        target = get_profile(name).mix_targets()
        print("  %-7s target: mem %.1f%%  int %.1f%%  fp %.1f/%.1f/%.1f"
              % ((name,) + target))
    print()
    print(format_mix_table(rows))
    print()

    print("Steady-state IPC (Figure 5 subset):\n")
    figure_rows = figure5_rows(benchmarks=BENCHMARKS,
                               instructions=INSTRUCTIONS)
    print(format_figure5_table(figure_rows))
    print()
    for row in figure_rows:
        limiter = get_profile(row.benchmark).limiter
        print("  %-7s limiter: %-8s -> SS-2 penalty %.1f%%"
              % (row.benchmark, limiter, 100 * row.ss2_penalty))


if __name__ == "__main__":
    main()
