#!/usr/bin/env python3
"""Watch redundant execution flow through the pipeline.

Attaches a tracer to a 2-way redundant run of a small program and
prints the per-instruction lifecycle: fetch, dispatch, the two copies'
issue/completion cycles (note the distinct functional units chosen by
Section-3.5 co-scheduling), and commit.  Then injects one fault and
shows the rewind in the trace.

Run:  python examples/pipeline_trace.py
"""

from repro import FaultConfig, Processor, ss2
from repro.uarch.trace import PipelineTracer
from repro.workloads import dot_product


def main():
    program = dot_product(length=12)

    processor = Processor(program, config=ss2().config, ft=ss2().ft)
    tracer = PipelineTracer()
    processor.attach_tracer(tracer)
    processor.run()
    print("Fault-free 2-way redundant execution "
          "(issue/done columns show copy0/copy1):\n")
    print(tracer.format_table(last=24))
    print()
    print("average fetch-to-commit latency: %.1f cycles"
          % tracer.average_commit_latency())
    mults = [record for record in tracer.records if "fmul" in record.text]
    distinct = sum(1 for record in mults
                   if record.fu_units[0] != record.fu_units[1])
    print("fmul copies on distinct physical units: %d/%d "
          "(Section 3.5 co-scheduling)" % (distinct, len(mults)))

    print()
    print("Same program with one injected fault:\n")
    processor = Processor(program, config=ss2().config, ft=ss2().ft,
                          fault_config=FaultConfig(rate_per_million=9000,
                                                   seed=123))
    tracer = PipelineTracer()
    processor.attach_tracer(tracer)
    processor.run()
    print(tracer.format_table(last=12))
    print()
    print("rewinds: %d   faults detected: %d   final IPC %.3f"
          % (processor.stats.rewinds, processor.stats.faults_detected,
             processor.stats.ipc))


if __name__ == "__main__":
    main()
