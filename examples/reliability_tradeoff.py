#!/usr/bin/env python3
"""The R=2 vs R=3 trade-off: rewind vs majority election (Section 3.2).

Simulates the fpppp workload across fault frequencies on:

* the R=2 design (rewind on any disagreement), and
* the R=3 design with 2-of-3 majority election (commit the majority,
  rewind only when no acceptable majority exists),

then overlays the Section-4 analytical prediction.  The paper's
conclusion: R=2 wins everywhere except at absurdly high fault rates, so
R>=3 is only justified for extra fault-coverage confidence.

Run:  python examples/reliability_tradeoff.py
"""

from repro import FaultConfig, Processor, ss2, ss3
from repro.analytical import faulty_ipc
from repro.workloads import build_workload

RATES_PER_MILLION = (0.0, 1000.0, 10_000.0, 50_000.0, 200_000.0)
INSTRUCTIONS = 8_000


def simulate(model, program, rate):
    fault_config = None
    if rate > 0:
        fault_config = FaultConfig(rate_per_million=rate,
                                   seed=1234 + int(rate))
    processor = Processor(program, config=model.config, ft=model.ft,
                          fault_config=fault_config)
    stats = processor.run(max_instructions=INSTRUCTIONS,
                          max_cycles=2_000_000)
    return stats


def main():
    program = build_workload("fpppp")
    r2, r3 = ss2(), ss3(majority=True)
    base2 = simulate(r2, program, 0.0).ipc
    base3 = simulate(r3, program, 0.0).ipc
    print("fault-free IPC:  R=2 %.3f   R=3 %.3f" % (base2, base3))
    print()
    header = ("%11s | %8s %8s | %8s %8s | %9s %9s"
              % ("faults/M", "R=2 sim", "R=2 mdl", "R=3 sim", "R=3 mdl",
                 "R2 rewnd", "R3 major"))
    print(header)
    print("-" * len(header))
    for rate in RATES_PER_MILLION:
        lam = rate / 1e6
        stats2 = simulate(r2, program, rate)
        stats3 = simulate(r3, program, rate)
        # Analytical overlay, anchored at the measured fault-free IPC
        # and the paper's nominal Y=30-cycle observed recovery cost.
        model2 = faulty_ipc(base2, 2, 2 * base2, lam, 30.0)
        model3 = faulty_ipc(base3, 3, 3 * base3, lam, 30.0,
                            majority=True)
        print("%11.0f | %8.3f %8.3f | %8.3f %8.3f | %9d %9d"
              % (rate, stats2.ipc, model2, stats3.ipc, model3,
                 stats2.rewinds, stats3.majority_commits))
    print()
    print("R=3 commits through single-copy faults by majority election "
          "(last column) and only rewinds on multi-copy strikes, so its "
          "curve stays flat — but it starts a third lower. R=2 is the "
          "better design at every realistic fault rate.")


if __name__ == "__main__":
    main()
