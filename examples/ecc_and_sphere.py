#!/usr/bin/env python3
"""Information redundancy outside the sphere of replication.

The paper's fault-tolerance argument rests on the committed state
(register file, rename map, caches, committed next-PC) being protected
by ECC while speculative state is protected by replication.  This
example exercises the actual Hamming SECDED implementation:

* single-bit upsets in a protected committed register file are corrected
  transparently (and counted);
* double-bit upsets are detected as uncorrectable;
* the sphere-of-replication audit table shows how every structure of the
  modelled processor is covered.

Run:  python examples/ecc_and_sphere.py
"""

import random

from repro.core import FT_COVERAGE, UNPROTECTED_COVERAGE, audit
from repro.core.sphere import coverage_table
from repro.ecc import ProtectedArray, UncorrectableError


def main():
    rng = random.Random(2001)
    regfile = ProtectedArray(32)
    values = [rng.randrange(1 << 48) for _ in range(32)]
    for index, value in enumerate(values):
        regfile.write(index, value)

    print("Striking every register with a random single-bit upset...")
    for index in range(32):
        regfile.inject_bit_flip(index, rng.randrange(72))
    survivors = sum(regfile.read(i) == values[i] for i in range(32))
    print("  %d/32 values read back correctly; %d corrections performed"
          % (survivors, regfile.corrected_errors))

    print()
    print("Striking one register with a double-bit upset...")
    regfile.write(7, values[7])
    regfile.inject_random_flips(7, 2, rng)
    try:
        regfile.read(7)
        print("  UNDETECTED (this must not happen)")
    except UncorrectableError as exc:
        print("  detected as uncorrectable: %s" % exc)

    print()
    print("Sphere-of-replication audit, fault-tolerant mode:")
    print(coverage_table(FT_COVERAGE))
    covered, uncovered = audit(FT_COVERAGE)
    print("=> %d structures covered, %d correctness-critical gaps"
          % (len(covered), len(uncovered)))

    print()
    covered, uncovered = audit(UNPROTECTED_COVERAGE)
    print("With protection off (R=1), %d structures become "
          "correctness-critical gaps:" % len(uncovered))
    for item in uncovered:
        print("  - %s" % item.name)


if __name__ == "__main__":
    main()
