#!/usr/bin/env python3
"""Fault-injection study: why detection matters, what recovery costs.

Sweeps the transient-fault rate on a gcc-like workload and reports, for
each machine mode:

* SS-1 (unprotected): faults silently corrupt committed state — the
  run's final state diverges from the golden model;
* SS-2 (2-way redundant): every fault is detected at commit and repaired
  by rewind; the final state always matches the golden model, at a small
  and nearly rate-independent throughput cost (the paper's Section 5.3
  result).

Run:  python examples/fault_injection_study.py
"""

from repro import FaultConfig, Processor, ss1, ss2
from repro.functional import compare_states, run_functional
from repro.workloads import build_workload

RATES_PER_MILLION = (0.0, 100.0, 1000.0, 5000.0, 20000.0)
ITERATIONS = 60  # finite run so the golden model can replay it exactly


def run_one(program, model, rate, seed):
    fault_config = None
    if rate > 0:
        fault_config = FaultConfig(rate_per_million=rate, seed=seed)
    processor = Processor(program, config=model.config, ft=model.ft,
                          fault_config=fault_config)
    stats = processor.run()
    return processor, stats


def main():
    program = build_workload("gcc", iterations=ITERATIONS)
    golden = run_functional(program, max_instructions=5_000_000)
    print("workload: gcc-like, %d instructions committed"
          % golden.instret)
    print()
    header = ("%11s | %-9s %6s %8s %8s %8s %10s"
              % ("faults/M", "machine", "IPC", "injected", "detected",
                 "rewinds", "final state"))
    print(header)
    print("-" * len(header))
    for rate in RATES_PER_MILLION:
        for model in (ss1(), ss2()):
            processor, stats = run_one(program, model, rate, seed=7)
            diff = compare_states(processor.arch, golden.state)
            if stats.crashed:
                verdict = "CRASHED"
            elif diff.clean:
                verdict = "correct"
            else:
                verdict = "CORRUPTED"
            print("%11.0f | %-9s %6.3f %8d %8d %8d %10s"
                  % (rate, model.name, stats.ipc, stats.faults_injected,
                     stats.faults_detected, stats.rewinds, verdict))
        print()
    print("Note how SS-2's IPC barely moves with the fault rate: "
          "rewind recovery costs tens of cycles per fault, which is "
          "negligible even at absurd rates (Section 4.2 / Figure 6).")
    print()
    print("At the absurd top rate, SS-2 can end CORRUPTED too: with "
          "~2% of copies struck, occasionally BOTH copies of one "
          "conditional branch are hit, and a conditional has only one "
          "wrong outcome, so the corrupt copies agree.  Dual-modular "
          "redundancy detects single-event upsets by design "
          "(Section 3.5 discusses exactly this correlated-fault "
          "limit); that is what R=3 buys extra confidence against.")


if __name__ == "__main__":
    main()
