#!/usr/bin/env python3
"""Quickstart: the dual-use datapath in three acts.

1. Assemble a small program and run it on the baseline superscalar
   (protection off: full performance).
2. Flip the same datapath into 2-way redundant mode (SS-2) and observe
   the throughput cost of protection.
3. Inject transient faults and watch detection + rewind recovery keep
   the architectural results correct.

Run:  python examples/quickstart.py
"""

from repro import FaultConfig, Processor, assemble, ss1, ss2
from repro.functional import compare_states, run_functional

SOURCE = """
; Sum an array, then scale it: enough work for the pipeline to stretch.
.data
array:  .word 12, 7, 3, 9, 31, 5, 8, 20, 11, 4, 6, 2, 18, 27, 1, 16
.text
        addi r1, r0, 0          ; i
        addi r2, r0, 0          ; sum
        addi r3, r0, 16         ; n
sum:    lw   r4, 0(r1)
        add  r2, r2, r4
        addi r1, r1, 1
        bne  r1, r3, sum
        sw   r2, 100(r0)        ; checksum
        addi r1, r0, 0
scale:  lw   r4, 0(r1)
        slli r4, r4, 1
        sw   r4, 32(r1)
        addi r1, r1, 1
        bne  r1, r3, scale
        halt
"""


def main():
    program = assemble(SOURCE, name="quickstart")
    golden = run_functional(program)
    print("golden checksum:", golden.state.memory.peek(100))
    print()

    for model in (ss1(), ss2()):
        processor = Processor(program, config=model.config, ft=model.ft)
        stats = processor.run()
        diff = compare_states(processor.arch, golden.state)
        print("%-8s  IPC %.3f  cycles %4d  state %s"
              % (model.name, stats.ipc, stats.cycles,
                 "correct" if diff.clean else "CORRUPTED"))

    print()
    print("Now with transient faults (1 per ~500 instructions):")
    faults = FaultConfig(rate_per_million=2000.0, seed=99)
    model = ss2()
    processor = Processor(program, config=model.config, ft=model.ft,
                          fault_config=faults)
    stats = processor.run()
    diff = compare_states(processor.arch, golden.state)
    print("%-8s  IPC %.3f  injected %d  detected %d  rewinds %d  "
          "state %s"
          % ("SS-2", stats.ipc, stats.faults_injected,
             stats.faults_detected, stats.rewinds,
             "correct" if diff.clean else "CORRUPTED"))


if __name__ == "__main__":
    main()
