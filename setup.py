"""Legacy setup shim.

The sandboxed environment has setuptools but not the ``wheel`` package,
so PEP 660 editable installs fail; this shim lets ``pip install -e .``
fall back to the classic ``setup.py develop`` path.
"""

from setuptools import setup

setup()
