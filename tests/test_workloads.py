"""Workload generator tests: calibration, determinism, feasibility."""

import pytest

from repro.functional.simulator import run_functional
from repro.workloads.generator import WorkloadGenerator, build_workload
from repro.workloads.mix import format_mix_table, measure_mix
from repro.workloads.profiles import (BENCHMARK_ORDER, PROFILES,
                                      get_profile)


class TestProfiles:
    def test_all_eleven_benchmarks_present(self):
        assert len(BENCHMARK_ORDER) == 11
        assert set(BENCHMARK_ORDER) == set(PROFILES)

    def test_table2_percentages_sum_to_100(self):
        # The paper's own art row sums to 99.61; allow that slack.
        for profile in PROFILES.values():
            assert sum(profile.mix_targets()) == pytest.approx(
                100.0, abs=0.5), profile.name

    def test_paper_values_verbatim(self):
        gcc = get_profile("gcc")
        assert gcc.mix_targets() == (74.55, 25.45, 0.0, 0.0, 0.0)
        fpppp = get_profile("fpppp")
        assert fpppp.mix_targets() == (52.43, 15.03, 15.53, 16.84, 0.16)

    def test_limiter_classification_from_section_5_2(self):
        assert get_profile("go").limiter == "ilp"
        assert get_profile("vpr").limiter == "ilp"
        assert get_profile("ammp").limiter == "div"
        assert "ruu" in get_profile("swim").limiter

    def test_unknown_benchmark_lists_names(self):
        with pytest.raises(KeyError) as excinfo:
            get_profile("doom")
        assert "gcc" in str(excinfo.value)


class TestSlotPlans:
    @pytest.mark.parametrize("name", BENCHMARK_ORDER)
    def test_plan_feasible(self, name):
        plan = WorkloadGenerator(name).slot_plan()
        assert all(count >= 0 for count in plan.values()), plan

    @pytest.mark.parametrize("name", BENCHMARK_ORDER)
    def test_expected_mix_close_to_table2(self, name):
        generator = WorkloadGenerator(name)
        expected = generator.expected_mix()
        targets = generator.profile.mix_targets()
        for got, want in zip(expected, targets):
            assert got == pytest.approx(want, abs=1.6), \
                "%s: %s vs %s" % (name, expected, targets)

    def test_fp_div_represented_where_significant(self):
        for name in ("swim", "art", "fpppp"):
            assert WorkloadGenerator(name).slot_plan()["fp_div"] >= 1


class TestGeneratedPrograms:
    @pytest.mark.parametrize("name", BENCHMARK_ORDER)
    def test_measured_mix_matches_table2(self, name):
        program = build_workload(name)
        row = measure_mix(program, instructions=12_000)
        targets = get_profile(name).mix_targets()
        for got, want in zip(row.as_tuple(), targets):
            assert got == pytest.approx(want, abs=2.5), \
                "%s: measured %s, target %s" % (name, row.as_tuple(),
                                                targets)

    def test_generation_is_deterministic(self):
        a = build_workload("gcc", seed=5)
        b = build_workload("gcc", seed=5)
        assert a.text == b.text and a.data == b.data

    def test_different_seeds_differ(self):
        a = build_workload("gcc", seed=5)
        b = build_workload("gcc", seed=6)
        assert a.text != b.text

    def test_finite_iterations_halt(self):
        program = build_workload("go", iterations=3)
        sim = run_functional(program, max_instructions=100_000)
        assert sim.state.halted

    def test_memory_accesses_stay_in_data_segment(self):
        program = build_workload("vortex", iterations=5)
        sim = run_functional(program, max_instructions=200_000)
        # Strict-mode replay: no out-of-range accesses.
        from repro.functional.simulator import FunctionalSimulator
        strict = FunctionalSimulator(program, strict_memory=True)
        strict.run(max_instructions=200_000)
        assert strict.state.halted
        assert sim.instret == strict.instret

    def test_mix_table_formatting(self):
        rows = [measure_mix(build_workload("go"), instructions=2000)]
        table = format_mix_table(rows)
        assert "go" in table and "%mem" in table
