"""Redundant-mode (R >= 2) engine tests: correctness and invariants."""

import pytest

from repro.core.config import (DUAL_REDUNDANT, TRIPLE_MAJORITY,
                               TRIPLE_REWIND, FTConfig)
from repro.functional.checker import compare_states
from repro.functional.simulator import run_functional
from repro.uarch.config import MachineConfig
from repro.uarch.processor import Processor, simulate
from repro.workloads.microbench import (branch_pattern, dot_product,
                                        fibonacci, pointer_chase,
                                        vector_sum)

MICROBENCHES = [vector_sum(length=48), fibonacci(n=24),
                dot_product(length=24), pointer_chase(length=64),
                branch_pattern(iterations=150, period=3)]

R3_CONFIG = MachineConfig(rob_size=126)


@pytest.mark.parametrize("program", MICROBENCHES, ids=lambda p: p.name)
def test_r2_matches_golden_model(program):
    golden = run_functional(program)
    processor = simulate(program, ft=DUAL_REDUNDANT, lockstep=True)
    assert processor.halted
    assert compare_states(processor.arch, golden.state).clean


@pytest.mark.parametrize("program", MICROBENCHES, ids=lambda p: p.name)
def test_r3_matches_golden_model(program):
    golden = run_functional(program)
    processor = simulate(program, config=R3_CONFIG, ft=TRIPLE_REWIND,
                         lockstep=True)
    assert compare_states(processor.arch, golden.state).clean


class TestRedundancyCosts:
    def test_r2_never_faster_than_baseline(self):
        for program in MICROBENCHES:
            base = simulate(program)
            redundant = simulate(program, ft=DUAL_REDUNDANT)
            assert redundant.stats.cycles >= base.stats.cycles, \
                program.name

    def test_r3_slower_than_r2_on_saturating_code(self):
        program = vector_sum(length=256)
        r2 = simulate(program, ft=DUAL_REDUNDANT)
        r3 = simulate(program, config=R3_CONFIG, ft=TRIPLE_REWIND)
        assert r3.stats.cycles > r2.stats.cycles

    def test_entries_are_r_times_instructions(self):
        program = fibonacci(n=32)
        processor = simulate(program, ft=DUAL_REDUNDANT)
        stats = processor.stats
        assert stats.entries_committed == 2 * stats.instructions

    def test_fault_free_run_has_no_rewinds(self):
        processor = simulate(vector_sum(length=64), ft=DUAL_REDUNDANT)
        assert processor.stats.rewinds == 0
        assert processor.stats.faults_detected == 0

    def test_checks_performed_per_commit(self):
        processor = simulate(fibonacci(n=16), ft=DUAL_REDUNDANT)
        assert processor.checker.checks >= processor.stats.instructions


class TestReplicationInvariants:
    def _capture_groups(self, ft, config=None):
        """Run a short program and harvest dispatched groups."""
        program = dot_product(length=16)
        processor = Processor(program, config=config, ft=ft)
        captured = []
        original = processor.replicator.build_group

        def spy(record, cycle):
            group = original(record, cycle)
            captured.append(group)
            return group

        processor.replicator.build_group = spy
        processor.run()
        return captured

    def test_group_has_r_copies(self):
        for group in self._capture_groups(DUAL_REDUNDANT):
            assert len(group.copies) == 2

    def test_copies_are_vidx_aligned(self):
        """The paper's invariant: copy k sits at aligned index + k."""
        for group in self._capture_groups(DUAL_REDUNDANT):
            base = group.copies[0].vidx
            assert base % 2 == 0
            for k, entry in enumerate(group.copies):
                assert entry.vidx == base + k
                assert entry.copy == k

    def test_operand_tags_differ_by_copy_offset(self):
        """Copy k's producer tag = copy 0's tag + k (Section 3.2)."""
        for group in self._capture_groups(DUAL_REDUNDANT):
            head = group.copies[0]
            for slot in range(2):
                if head.src_tags[slot] is None:
                    continue
                for k, entry in enumerate(group.copies):
                    assert entry.src_tags[slot] == \
                        head.src_tags[slot] + k

    def test_r3_alignment(self):
        groups = self._capture_groups(TRIPLE_REWIND, config=R3_CONFIG)
        for group in groups:
            assert len(group.copies) == 3
            assert group.copies[0].vidx % 3 == 0


class TestPhysicalRegisterPoolVariant:
    def test_shared_pool_is_slightly_slower(self):
        """Section 3.2: corroboration costs R extra reads per retire."""
        program = vector_sum(length=256)
        split = simulate(program, ft=DUAL_REDUNDANT)
        shared = simulate(
            program, config=MachineConfig(shared_physical_regfile=True),
            ft=DUAL_REDUNDANT)
        assert shared.stats.cycles >= split.stats.cycles
        golden = run_functional(program)
        assert compare_states(shared.arch, golden.state).clean


class TestRewindExtraPenalty:
    def test_extra_penalty_costs_cycles_under_faults(self):
        from repro.core.faults import FaultConfig
        program = vector_sum(length=256)
        fault_config = FaultConfig(rate_per_million=5000, seed=5)
        fast = simulate(program, ft=DUAL_REDUNDANT,
                        fault_config=fault_config)
        slow_ft = FTConfig(redundancy=2, rewind_extra_penalty=50)
        slow = simulate(program, ft=slow_ft, fault_config=fault_config)
        assert slow.stats.rewinds > 0
        assert slow.stats.cycles > fast.stats.cycles
