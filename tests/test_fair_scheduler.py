"""The service's fair scheduler: weighted max-min properties.

The headline property test (a PR satellite) checks the allocator
against the *definition* of weighted max-min fairness, not against
examples: for every random capacity/demand/weight instance there must
exist a single water level theta with ``a_i = min(d_i, w_i * theta)``,
demands capped, capacity conserved, and no backlogged tenant below the
common level.  The integral allocator must stay within one slot of the
fractional ideal while conserving whole-slot capacity exactly.
"""

import pytest

pytest.importorskip(
    "hypothesis",
    reason="property suite needs the optional 'test' extra "
           "(pip install .[test])")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.service.scheduler import (FairScheduler, ReplicateBudget,
                                     SlotPool, TenantConfig,
                                     integral_allocation,
                                     weighted_max_min)

# -- strategies -------------------------------------------------------------

demands_st = st.lists(st.integers(min_value=0, max_value=50),
                      min_size=1, max_size=8)
weights_st = st.floats(min_value=0.1, max_value=8.0,
                       allow_nan=False, allow_infinity=False)
capacity_st = st.integers(min_value=1, max_value=40)

_TOL = 1e-6


def _weights_for(demands, weights):
    return (weights * len(demands))[:len(demands)]


# -- weighted max-min: the fairness definition ------------------------------

class TestWeightedMaxMinProperties:
    @given(capacity=capacity_st, demands=demands_st,
           weights=st.lists(weights_st, min_size=8, max_size=8))
    @settings(max_examples=200, deadline=None)
    def test_allocation_is_weighted_max_min(self, capacity, demands,
                                            weights):
        weights = _weights_for(demands, weights)
        allocation = weighted_max_min(capacity, demands, weights)

        # (1) demand cap: nobody exceeds what they asked for.
        for alloc, demand in zip(allocation, demands):
            assert -_TOL <= alloc <= demand + _TOL

        # (2) work conservation: all capacity is out whenever total
        # demand covers it, and never more than min(capacity, demand).
        expected = min(capacity, sum(demands))
        assert abs(sum(allocation) - expected) < 1e-6 * max(1, expected)

        # (3) single water level: unsaturated tenants sit at a common
        # normalised level theta, and no saturated tenant is above it.
        unsaturated = [index for index in range(len(demands))
                       if allocation[index] < demands[index] - _TOL]
        if unsaturated:
            theta = allocation[unsaturated[0]] / weights[unsaturated[0]]
            for index in unsaturated:
                assert allocation[index] / weights[index] \
                    == pytest.approx(theta, abs=1e-6)
            for index in range(len(demands)):
                if index not in unsaturated:
                    # Saturated at d_i: its normalised level cannot
                    # exceed the water level (else it took from a
                    # backlogged tenant).
                    assert demands[index] / weights[index] \
                        <= theta + 1e-6

    @given(capacity=capacity_st, demands=demands_st)
    @settings(max_examples=100, deadline=None)
    def test_unweighted_equals_weight_one(self, capacity, demands):
        assert weighted_max_min(capacity, demands) == \
            weighted_max_min(capacity, demands, [1.0] * len(demands))

    @given(capacity=capacity_st, demands=demands_st,
           weights=st.lists(weights_st, min_size=8, max_size=8),
           scale=st.floats(min_value=0.5, max_value=4.0))
    @settings(max_examples=100, deadline=None)
    def test_scale_invariance_of_weights(self, capacity, demands,
                                         weights, scale):
        weights = _weights_for(demands, weights)
        base = weighted_max_min(capacity, demands, weights)
        scaled = weighted_max_min(capacity, demands,
                                  [weight * scale for weight in weights])
        for a, b in zip(base, scaled):
            assert a == pytest.approx(b, abs=1e-6)

    def test_validation(self):
        with pytest.raises(ConfigError):
            weighted_max_min(4, [1, -1])
        with pytest.raises(ConfigError):
            weighted_max_min(4, [1, 1], [1.0, 0.0])
        with pytest.raises(ConfigError):
            weighted_max_min(4, [1, 1], [1.0])
        assert weighted_max_min(0, [3, 3]) == [0.0, 0.0]
        assert weighted_max_min(4, []) == []


class TestIntegralAllocation:
    @given(capacity=capacity_st, demands=demands_st,
           weights=st.lists(weights_st, min_size=8, max_size=8))
    @settings(max_examples=200, deadline=None)
    def test_integral_tracks_the_fractional_ideal(self, capacity,
                                                  demands, weights):
        weights = _weights_for(demands, weights)
        fractional = weighted_max_min(capacity, demands, weights)
        integral = integral_allocation(capacity, demands, weights)
        assert sum(integral) == min(capacity, sum(demands))
        for whole, ideal, demand in zip(integral, fractional, demands):
            assert 0 <= whole <= demand
            assert abs(whole - ideal) < 1.0 + _TOL

    def test_largest_remainder_prefers_heavier_weight(self):
        # 3 slots, two tenants wanting everything: 2:1 weights give
        # fractional 2.0/1.0 — exact; with 4 slots it's 2.67/1.33 and
        # the leftover slot goes to the heavier tenant.
        assert integral_allocation(3, [3, 3], [2.0, 1.0]) == [2, 1]
        assert integral_allocation(4, [4, 4], [2.0, 1.0]) == [3, 1]

    def test_leftover_never_exceeds_a_demand(self):
        assert integral_allocation(10, [1, 2], [1.0, 1.0]) == [1, 2]


# -- TenantConfig -----------------------------------------------------------

class TestTenantConfig:
    def test_round_trip(self):
        config = TenantConfig(name="alice", weight=2.5, max_queued=3,
                              max_running=1)
        assert TenantConfig.from_dict(config.to_dict()) == config

    def test_defaults_omitted_from_dict(self):
        assert TenantConfig(name="bob").to_dict() == \
            {"name": "bob", "weight": 1.0}

    @pytest.mark.parametrize("kwargs", [
        {"name": ""},
        {"name": "x", "weight": 0},
        {"name": "x", "weight": -1.0},
        {"name": "x", "weight": True},
        {"name": "x", "max_queued": 0},
        {"name": "x", "max_running": -2},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            TenantConfig(**kwargs)

    def test_unknown_fields_rejected(self):
        with pytest.raises(ConfigError, match="mystery"):
            TenantConfig.from_dict({"name": "x", "mystery": 1})


# -- FairScheduler grants ---------------------------------------------------

class TestFairScheduler:
    def test_grants_respect_the_allocation(self):
        scheduler = FairScheduler(
            4, [TenantConfig("alice", weight=3.0),
                TenantConfig("bob", weight=1.0)])
        scheduler.set_demand("alice", "j1", 10)
        scheduler.set_demand("bob", "j2", 10)
        assert scheduler.allocation() == {"alice": 3, "bob": 1}
        assert [scheduler.grant("alice") for _ in range(4)] == \
            [True, True, True, False]
        assert scheduler.grant("bob") is True
        assert scheduler.grant("bob") is False      # pool exhausted

    def test_freed_slots_flow_to_the_backlogged_tenant(self):
        scheduler = FairScheduler(2, [TenantConfig("alice"),
                                      TenantConfig("bob")])
        scheduler.set_demand("alice", "j1", 5)
        assert scheduler.grant("alice") and scheduler.grant("alice")
        scheduler.set_demand("bob", "j2", 5)
        # Equal weights, both demanding: alice is over her share of 1
        # and cannot re-acquire after a release, bob can.
        scheduler.release("alice", executed_trials=1)
        assert scheduler.grant("alice") is False
        assert scheduler.grant("bob") is True

    def test_in_flight_counts_as_demand(self):
        scheduler = FairScheduler(2)
        scheduler.set_demand("alice", "j1", 2)
        assert scheduler.grant("alice") and scheduler.grant("alice")
        scheduler.set_demand("alice", "j1", 0)
        # Demand withdrawn but slots still held: the allocation must
        # keep covering them so release accounting stays consistent.
        assert scheduler.allocation() == {"alice": 2}
        scheduler.release("alice")
        scheduler.release("alice")
        assert scheduler.allocation() == {}

    def test_release_without_grant_raises(self):
        scheduler = FairScheduler(2)
        with pytest.raises(ConfigError, match="release"):
            scheduler.release("ghost")

    def test_report_shape_and_busy_accounting(self):
        clock = {"now": 0.0}
        scheduler = FairScheduler(2, [TenantConfig("alice")],
                                  clock=lambda: clock["now"])
        scheduler.set_demand("alice", "j1", 2)
        assert scheduler.grant("alice")
        clock["now"] = 2.0
        scheduler.release("alice", executed_trials=7)
        report = scheduler.report()
        entry = report["tenants"]["alice"]
        assert report["slots"] == 2
        assert entry["trials_executed"] == 7
        assert entry["busy_seconds"] == pytest.approx(2.0)
        assert entry["demand_seconds"] == pytest.approx(2.0)

    def test_idle_time_before_demand_is_not_booked(self):
        clock = {"now": 0.0}
        scheduler = FairScheduler(2, [TenantConfig("alice")],
                                  clock=lambda: clock["now"])
        clock["now"] = 100.0        # long idle gap after registration
        scheduler.set_demand("alice", "j1", 1)
        clock["now"] = 101.0
        report = scheduler.report()
        assert report["tenants"]["alice"]["demand_seconds"] == \
            pytest.approx(1.0)


class TestSlotPool:
    def test_nonblocking_acquire_and_release(self):
        pool = SlotPool(FairScheduler(1))
        pool.set_demand("alice", "j1", 1)
        assert pool.acquire("alice", timeout=0) is True
        assert pool.acquire("alice", timeout=0) is False
        pool.release("alice")
        assert pool.acquire("alice", timeout=0) is True

    def test_timeout_expires(self):
        pool = SlotPool(FairScheduler(1))
        pool.set_demand("alice", "j1", 2)
        assert pool.acquire("alice", timeout=0)
        assert pool.acquire("alice", timeout=0.05) is False


class TestReplicateBudget:
    def test_unpaced_budget_always_grants(self):
        budget = ReplicateBudget(FairScheduler(2))
        assert all(budget.try_take("alice") for _ in range(100))

    def test_epoch_budget_splits_by_weight(self):
        clock = {"now": 0.0}
        scheduler = FairScheduler(
            2, [TenantConfig("alice", weight=2.0),
                TenantConfig("bob", weight=1.0)])
        budget = ReplicateBudget(scheduler, budget=3, epoch=1.0,
                                 clock=lambda: clock["now"])
        budget.set_demand("alice", 10)
        budget.set_demand("bob", 10)
        grants = {"alice": 0, "bob": 0}
        for _ in range(10):
            for tenant in grants:
                if budget.try_take(tenant):
                    grants[tenant] += 1
        assert grants == {"alice": 2, "bob": 1}
        # The next epoch refills the shares.
        clock["now"] = 1.5
        assert budget.try_take("alice")

    def test_refusal_is_pacing_not_capping(self):
        clock = {"now": 0.0}
        budget = ReplicateBudget(FairScheduler(2), budget=1,
                                 epoch=1.0,
                                 clock=lambda: clock["now"])
        budget.set_demand("alice", 5)
        taken = 0
        for epoch in range(5):
            clock["now"] = float(epoch)
            if budget.try_take("alice"):
                taken += 1
            assert budget.try_take("alice") is False
        assert taken == 5       # every epoch pays out; nothing is lost

    def test_validation(self):
        with pytest.raises(ConfigError):
            ReplicateBudget(FairScheduler(1), budget=0)
        with pytest.raises(ConfigError):
            ReplicateBudget(FairScheduler(1), epoch=0.0)
