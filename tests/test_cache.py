"""Cache model tests: geometry, LRU, write-back, hierarchy wiring."""

import pytest

from repro.errors import ConfigError
from repro.memory.cache import Cache, CacheParams, MemoryTiming
from repro.memory.hierarchy import HierarchyParams, MemoryHierarchy


def _small_cache(assoc=2, sets=4, block=16, hit=1, mem_lat=10):
    params = CacheParams("test", size_bytes=sets * assoc * block,
                         assoc=assoc, block_bytes=block, hit_latency=hit)
    return Cache(params, MemoryTiming(mem_lat))


class TestGeometry:
    def test_num_sets(self):
        params = CacheParams("x", size_bytes=32 * 1024, assoc=2,
                             block_bytes=32, hit_latency=1)
        assert params.num_sets == 512

    def test_indivisible_geometry_rejected(self):
        with pytest.raises(ConfigError):
            CacheParams("x", size_bytes=1000, assoc=3, block_bytes=32,
                        hit_latency=1)

    def test_non_power_of_two_block_rejected(self):
        with pytest.raises(ConfigError):
            CacheParams("x", size_bytes=960, assoc=2, block_bytes=30,
                        hit_latency=1)

    def test_zero_latency_rejected(self):
        with pytest.raises(ConfigError):
            CacheParams("x", size_bytes=1024, assoc=2, block_bytes=32,
                        hit_latency=0)


class TestHitMiss:
    def test_cold_miss_then_hit(self):
        cache = _small_cache()
        assert cache.access(0) == 11   # 1 + 10 memory
        assert cache.access(0) == 1
        assert cache.hits == 1 and cache.misses == 1

    def test_same_block_different_bytes_hit(self):
        cache = _small_cache(block=16)
        cache.access(0)
        assert cache.access(15) == 1
        assert cache.access(16) == 11  # next block

    def test_miss_rate(self):
        cache = _small_cache()
        cache.access(0)
        cache.access(0)
        assert cache.miss_rate == pytest.approx(0.5)


class TestLruReplacement:
    def test_lru_eviction_order(self):
        cache = _small_cache(assoc=2, sets=1, block=16)
        cache.access(0)      # A
        cache.access(16)     # B
        cache.access(0)      # touch A: B becomes LRU
        cache.access(32)     # C evicts B
        assert cache.probe(0)
        assert not cache.probe(16)
        assert cache.probe(32)

    def test_eviction_counted(self):
        cache = _small_cache(assoc=1, sets=1, block=16)
        cache.access(0)
        cache.access(16)
        assert cache.evictions == 1


class TestWriteBack:
    def test_dirty_eviction_writes_back(self):
        cache = _small_cache(assoc=1, sets=1, block=16)
        cache.access(0, write=True)
        cache.access(16)
        assert cache.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        cache = _small_cache(assoc=1, sets=1, block=16)
        cache.access(0)
        cache.access(16)
        assert cache.writebacks == 0

    def test_write_hit_marks_dirty(self):
        cache = _small_cache(assoc=1, sets=1, block=16)
        cache.access(0)               # clean fill
        cache.access(4, write=True)   # dirty the same block
        cache.access(16)              # evict
        assert cache.writebacks == 1

    def test_flush_counts_dirty_blocks(self):
        cache = _small_cache(assoc=2, sets=2, block=16)
        cache.access(0, write=True)
        cache.access(16)
        cache.flush()
        assert cache.writebacks == 1
        assert not cache.probe(0)


class TestHierarchy:
    def test_l1_miss_fills_from_l2(self):
        hierarchy = MemoryHierarchy()
        first = hierarchy.load_latency(0)
        second = hierarchy.load_latency(0)
        assert first > second == hierarchy.params.dl1.hit_latency
        assert hierarchy.l2.misses == 1

    def test_l2_shared_between_l1s(self):
        hierarchy = MemoryHierarchy()
        hierarchy.fetch_latency(0)
        before = hierarchy.l2.accesses
        hierarchy.load_latency(0)
        assert hierarchy.l2.accesses == before + 1

    def test_l2_hit_cheaper_than_memory(self):
        hierarchy = MemoryHierarchy()
        cold = hierarchy.load_latency(0)
        # Evict from L1 by filling its set, then reload: L2 hit.
        dl1 = hierarchy.params.dl1
        way_stride = dl1.num_sets * dl1.block_bytes // 8  # in words
        hierarchy.load_latency(way_stride)
        hierarchy.load_latency(2 * way_stride)
        warm = hierarchy.load_latency(0)
        assert warm < cold
        assert warm > dl1.hit_latency

    def test_instruction_line_identifies_blocks(self):
        hierarchy = MemoryHierarchy()
        block_insts = hierarchy.params.il1.block_bytes // 8
        assert (hierarchy.instruction_line(0)
                == hierarchy.instruction_line(block_insts - 1))
        assert (hierarchy.instruction_line(0)
                != hierarchy.instruction_line(block_insts))

    def test_stats_structure(self):
        hierarchy = MemoryHierarchy()
        hierarchy.load_latency(0)
        stats = hierarchy.stats()
        assert stats["dl1"]["misses"] == 1
        assert set(stats) == {"il1", "dl1", "l2"}

    def test_reset_stats(self):
        hierarchy = MemoryHierarchy()
        hierarchy.load_latency(0)
        hierarchy.reset_stats()
        assert hierarchy.dl1.accesses == 0

    def test_table1_geometry(self):
        params = HierarchyParams()
        assert params.il1.size_bytes == 64 * 1024
        assert params.il1.assoc == 2
        assert params.dl1.size_bytes == 32 * 1024
        assert params.dl1.assoc == 2
        assert params.l2.size_bytes == 512 * 1024
        assert params.l2.assoc == 4
