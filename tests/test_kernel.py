"""Semantic-kernel tests: ALU, FP, branch and address semantics."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.functional.kernel import (alu_value, branch_taken,
                                     control_next_pc, effective_address,
                                     static_target)
from repro.functional.numeric import s64, u64
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op

i64 = st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1)


class TestIntegerAlu:
    def test_add_wraps(self):
        top = (1 << 63) - 1
        assert alu_value(Op.ADD, top, 1, 0, 0) == -(1 << 63)

    def test_sub(self):
        assert alu_value(Op.SUB, 5, 9, 0, 0) == -4

    def test_logic_ops(self):
        assert alu_value(Op.AND, 0b1100, 0b1010, 0, 0) == 0b1000
        assert alu_value(Op.OR, 0b1100, 0b1010, 0, 0) == 0b1110
        assert alu_value(Op.XOR, 0b1100, 0b1010, 0, 0) == 0b0110

    def test_shifts_mask_amount(self):
        assert alu_value(Op.SLL, 1, 64, 0, 0) == 1  # shift by 64 & 63 = 0
        assert alu_value(Op.SRL, -1, 60, 0, 0) == 15

    def test_arithmetic_shift_preserves_sign(self):
        assert alu_value(Op.SRA, -8, 2, 0, 0) == -2

    def test_set_less_than(self):
        assert alu_value(Op.SLT, -1, 0, 0, 0) == 1
        assert alu_value(Op.SLTU, -1, 0, 0, 0) == 0  # unsigned compare

    def test_immediates(self):
        assert alu_value(Op.ADDI, 10, 0, -3, 0) == 7
        assert alu_value(Op.LUI, 0, 0, 5, 0) == 5 << 16

    @given(i64, i64)
    def test_mul_matches_wrapped_python(self, a, b):
        assert alu_value(Op.MUL, a, b, 0, 0) == s64(a * b)

    def test_mulh_high_bits(self):
        a = 1 << 40
        assert alu_value(Op.MULH, a, a, 0, 0) == s64((a * a) >> 64)


class TestDivision:
    def test_truncating_division(self):
        assert alu_value(Op.DIV, 7, 2, 0, 0) == 3
        assert alu_value(Op.DIV, -7, 2, 0, 0) == -3
        assert alu_value(Op.DIV, 7, -2, 0, 0) == -3

    def test_divide_by_zero_is_defined(self):
        assert alu_value(Op.DIV, 42, 0, 0, 0) == 0
        assert alu_value(Op.REM, 42, 0, 0, 0) == 0

    def test_remainder_sign_follows_dividend(self):
        assert alu_value(Op.REM, 7, 2, 0, 0) == 1
        assert alu_value(Op.REM, -7, 2, 0, 0) == -1

    @given(i64, i64.filter(lambda v: v != 0))
    def test_div_rem_identity(self, a, b):
        q = alu_value(Op.DIV, a, b, 0, 0)
        r = alu_value(Op.REM, a, b, 0, 0)
        assert s64(q * b + r) == s64(a)

    def test_int_min_overflow_wraps(self):
        int_min = -(1 << 63)
        assert alu_value(Op.DIV, int_min, -1, 0, 0) == int_min  # wraps


class TestFloatingPoint:
    def test_basic_arithmetic(self):
        assert alu_value(Op.FADD, 1.5, 2.5, 0, 0) == 4.0
        assert alu_value(Op.FMUL, 3.0, 0.5, 0, 0) == 1.5

    def test_division_by_zero_is_total(self):
        assert alu_value(Op.FDIV, 1.0, 0.0, 0, 0) == math.inf
        assert alu_value(Op.FDIV, -1.0, 0.0, 0, 0) == -math.inf
        assert math.isnan(alu_value(Op.FDIV, 0.0, 0.0, 0, 0))

    def test_sqrt_of_negative_is_nan(self):
        assert math.isnan(alu_value(Op.FSQRT, -4.0, 0.0, 0, 0))
        assert alu_value(Op.FSQRT, 9.0, 0.0, 0, 0) == 3.0

    def test_conversions(self):
        assert alu_value(Op.CVTIF, 3, 0, 0, 0) == 3.0
        assert alu_value(Op.CVTFI, 3.7, 0, 0, 0) == 3

    def test_cvtfi_saturates_infinities(self):
        assert alu_value(Op.CVTFI, math.inf, 0, 0, 0) == (1 << 63) - 1
        assert alu_value(Op.CVTFI, -math.inf, 0, 0, 0) == -(1 << 63)
        assert alu_value(Op.CVTFI, math.nan, 0, 0, 0) == 0

    def test_compares(self):
        assert alu_value(Op.FCMPLT, 1.0, 2.0, 0, 0) == 1
        assert alu_value(Op.FCMPLE, 2.0, 2.0, 0, 0) == 1
        assert alu_value(Op.FCMPEQ, 2.0, 2.1, 0, 0) == 0


class TestControlFlow:
    def test_branch_conditions(self):
        assert branch_taken(Op.BEQ, 5, 5)
        assert branch_taken(Op.BNE, 5, 6)
        assert branch_taken(Op.BLT, -1, 0)
        assert branch_taken(Op.BGE, 0, 0)

    def test_branch_next_pc(self):
        taken = Instruction(Op.BEQ, rs1=1, rs2=2, imm=5)
        assert control_next_pc(taken, 3, 3, 10) == 16
        assert control_next_pc(taken, 3, 4, 10) == 11

    def test_jump_next_pc(self):
        assert control_next_pc(Instruction(Op.J, imm=7), 0, 0, 2) == 7
        jr = Instruction(Op.JR, rs1=1)
        assert control_next_pc(jr, 123, 0, 2) == 123

    def test_link_values(self):
        assert alu_value(Op.JAL, 0, 0, 7, 10) == 11
        assert alu_value(Op.JALR, 0, 0, 0, 10) == 11

    def test_halt_next_pc_is_self(self):
        assert control_next_pc(Instruction(Op.HALT), 0, 0, 9) == 9

    def test_static_targets(self):
        assert static_target(Instruction(Op.BEQ, rs1=0, rs2=0, imm=3),
                             10) == 14
        assert static_target(Instruction(Op.J, imm=4), 10) == 4
        assert static_target(Instruction(Op.JR, rs1=1), 10) is None


class TestEffectiveAddress:
    def test_positive(self):
        assert effective_address(100, 8) == 108

    def test_negative_displacement(self):
        assert effective_address(100, -8) == 92

    def test_wraps_unsigned(self):
        assert effective_address(0, -1) == u64(-1)
