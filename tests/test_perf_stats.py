"""Property suite for the bench differ's statistical core.

``repro.perf.stats`` is the primitive every ``bench --diff`` verdict
rests on, so its promises get pinned here directly:

* identical-distribution inputs must not produce significant verdicts
  beyond the configured alpha (the false-positive bound, checked over
  many seeds and data draws);
* an injected 20% slowdown — the regression the ISSUE's acceptance
  criteria name — must be detected at bench-realistic repeat counts;
* the verdict is invariant under sample order (a JSON file's listing
  order is not evidence) and a pure function of (samples, seed,
  config) on the Monte Carlo path;
* the exact-enumeration path ignores the seed entirely.

Hypothesis drives the invariants; the false-positive bound uses plain
seeded ``random.Random`` draws so the observed rate is one fixed,
reproducible number rather than a flaky sample.
"""

import random

import pytest

from repro.errors import HistoryError
from repro.perf.stats import (DEGRADED, HIGHER_IS_BETTER, IMPROVED,
                              LOWER_IS_BETTER, MAX_EXACT_SPLITS,
                              UNCHANGED, compare_samples,
                              permutation_test, relative_change)

pytest.importorskip(
    "hypothesis",
    reason="property suite needs the optional 'test' extra "
           "(pip install .[test])")

from hypothesis import given, settings
from hypothesis import strategies as st

#: Dyadic rationals near a 1-second wall time: exactly representable,
#: so permuted partial sums are float-exact and ties are real ties.
dyadic_seconds = st.integers(min_value=32, max_value=192).map(
    lambda n: n / 64.0)

sample_lists = st.lists(dyadic_seconds, min_size=2, max_size=7)


# -- invariants (Hypothesis) ------------------------------------------------

@given(samples=sample_lists)
@settings(max_examples=60, deadline=None)
def test_identical_samples_are_never_significant(samples):
    """x vs x is the strongest same-distribution case: the observed
    statistic is exactly zero, every permutation ties it, p = 1."""
    for direction in (LOWER_IS_BETTER, HIGHER_IS_BETTER):
        comparison = compare_samples(samples, list(samples),
                                     direction=direction)
        assert comparison.verdict == UNCHANGED
        assert not comparison.significant
        assert comparison.p_value == 1.0


@given(samples=sample_lists, scale=st.sampled_from((0.5, 1.0, 4.0)))
@settings(max_examples=60, deadline=None)
def test_injected_slowdown_detected(samples, scale):
    """A 20% slowdown on five near-constant repeats must be flagged.

    Five repeats per side is the CI bench-diff shape: C(10,5) = 252
    splits, exact enumeration, achievable p = 2/252 < 0.05.
    """
    baseline = [scale * (1.0 + 0.0001 * index)
                for index in range(5)]
    candidate = [value * 1.2 for value in baseline]
    slower = compare_samples(baseline, candidate,
                             direction=LOWER_IS_BETTER)
    assert slower.verdict == DEGRADED
    assert slower.p_value is not None and slower.p_value <= 0.05
    assert slower.rel_change == pytest.approx(0.2, abs=1e-6)
    # The same movement on a higher-is-better metric is an improvement.
    faster = compare_samples(baseline, candidate,
                             direction=HIGHER_IS_BETTER)
    assert faster.verdict == IMPROVED
    del samples  # draws only vary the Hypothesis schedule


@given(baseline=sample_lists, candidate=sample_lists,
       seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_order_invariance(baseline, candidate, seed):
    """Reversing or shuffling either sample list changes nothing."""
    reference = compare_samples(baseline, candidate, seed=0)
    rng = random.Random(seed)
    shuffled_base = list(baseline)
    shuffled_cand = list(candidate)
    rng.shuffle(shuffled_base)
    rng.shuffle(shuffled_cand)
    for left, right in ((list(reversed(baseline)), candidate),
                        (baseline, list(reversed(candidate))),
                        (shuffled_base, shuffled_cand)):
        assert compare_samples(left, right, seed=0) == reference


@given(baseline=sample_lists, candidate=sample_lists,
       seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=60, deadline=None)
def test_exact_path_is_seed_independent(baseline, candidate, seed):
    """Small samples enumerate every split; the seed must not matter."""
    default = permutation_test(baseline, candidate, seed=0)
    assert default.exact
    assert permutation_test(baseline, candidate, seed=seed) == default


@given(seed=st.integers(min_value=0, max_value=2**16),
       shift=st.sampled_from((0.0, 0.25)))
@settings(max_examples=30, deadline=None)
def test_monte_carlo_path_is_seed_deterministic(seed, shift):
    """Above MAX_EXACT_SPLITS the test samples permutations; the same
    seed must reproduce the same p-value bit-for-bit."""
    rng = random.Random(20011209)
    baseline = [1.0 + rng.random() * 0.1 for _ in range(10)]
    candidate = [value + shift for value in baseline]
    first = permutation_test(baseline, candidate, seed=seed,
                             permutations=500)
    again = permutation_test(baseline, candidate, seed=seed,
                             permutations=500)
    assert not first.exact
    assert first.splits == 500
    assert first == again


# -- false-positive bound ---------------------------------------------------

def test_false_positive_bound_over_seeds():
    """Same-distribution draws must stay below alpha false positives.

    400 independent pairs, both sides drawn from the same uniform
    noise distribution, each compared at alpha = 0.05 with its own
    seed.  The permutation test is exact at these sizes (C(12,6) =
    924), so validity promises P(p <= alpha) <= alpha; the effect-size
    gate only ever suppresses further.  Everything is seeded, so the
    observed rate is one fixed number — asserted with headroom (1.5x)
    against the discreteness of the achievable p-values.
    """
    alpha = 0.05
    trials = 400
    significant = 0
    for trial in range(trials):
        rng = random.Random(1000 + trial)
        baseline = [1.0 + rng.uniform(-0.1, 0.1) for _ in range(6)]
        candidate = [1.0 + rng.uniform(-0.1, 0.1) for _ in range(6)]
        comparison = compare_samples(baseline, candidate,
                                     direction=LOWER_IS_BETTER,
                                     alpha=alpha, min_effect=0.05,
                                     seed=trial)
        if comparison.significant:
            significant += 1
    assert significant <= alpha * trials * 1.5


# -- gates and refusals -----------------------------------------------------

def test_effect_size_gate_suppresses_tiny_shifts():
    """Significant but minuscule movement stays UNCHANGED: a perfectly
    clean 1% shift reaches the p-value floor yet sits far below the 5%
    minimum effect."""
    baseline = [1.0, 1.0001, 1.0002, 1.0003, 1.0004]
    candidate = [value * 1.01 for value in baseline]
    comparison = compare_samples(baseline, candidate,
                                 direction=LOWER_IS_BETTER,
                                 alpha=0.05, min_effect=0.05)
    assert comparison.p_value is not None
    assert comparison.p_value <= 0.05
    assert comparison.verdict == UNCHANGED


def test_single_sample_sides_are_refused():
    """One point cannot witness a distribution: p_value None, verdict
    UNCHANGED, and the note says why."""
    comparison = compare_samples([1.0], [2.0, 2.1, 2.2])
    assert comparison.p_value is None
    assert comparison.verdict == UNCHANGED
    assert "insufficient samples" in comparison.note


def test_underpowered_alpha_is_noted():
    """2v2 has a p-value floor of 2/6 — even total separation cannot
    reach alpha 0.05, and the comparison must say so."""
    comparison = compare_samples([1.0, 1.01], [2.0, 2.01],
                                 direction=LOWER_IS_BETTER,
                                 alpha=0.05)
    assert comparison.verdict == UNCHANGED
    assert "add repeats" in comparison.note


def test_monte_carlo_p_value_never_zero():
    """The add-one correction keeps Monte Carlo estimates off an
    impossible zero even under total separation."""
    baseline = [1.0 + 0.001 * index for index in range(12)]
    candidate = [value + 10.0 for value in baseline]
    result = permutation_test(baseline, candidate, seed=7,
                              permutations=200)
    assert not result.exact
    assert result.p_value == pytest.approx(1.0 / 201.0)


def test_exact_threshold_matches_module_constant():
    """9v9 pools overflow MAX_EXACT_SPLITS (C(18,9) = 48620) and must
    fall back to Monte Carlo; 8v8 (12870) stays exact."""
    eight = permutation_test([1.0] * 8, [1.0] * 8)
    nine = permutation_test([1.0] * 9, [1.0] * 9, permutations=100)
    assert eight.exact and eight.splits <= MAX_EXACT_SPLITS
    assert not nine.exact


def test_relative_change_signs_and_zero_baseline():
    assert relative_change(2.0, 3.0) == pytest.approx(0.5)
    assert relative_change(2.0, 1.0) == pytest.approx(-0.5)
    assert relative_change(0.0, 5.0) == 0.0


def test_bad_inputs_raise_history_error():
    with pytest.raises(HistoryError, match="non-empty"):
        permutation_test([], [1.0, 2.0])
    with pytest.raises(HistoryError, match="non-empty"):
        compare_samples([1.0, 2.0], [])
    with pytest.raises(HistoryError, match="direction"):
        compare_samples([1.0, 2.0], [1.0, 2.0],
                        direction="sideways")
