"""Binary encoding round-trip tests, including property-based coverage."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.isa.encoding import decode, encode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OP_INFO, Op


def _instruction_strategy():
    """Generate arbitrary well-formed instructions."""
    def build(op, rd, rs1, rs2, imm):
        info = OP_INFO[op]
        return Instruction(
            op,
            rd=rd if info.writes_reg else None,
            rs1=rs1 if info.reads_rs1 else None,
            rs2=rs2 if info.reads_rs2 else None,
            imm=imm if info.uses_imm else 0)

    return st.builds(
        build,
        op=st.sampled_from(list(Op)),
        rd=st.integers(min_value=0, max_value=63),
        rs1=st.integers(min_value=0, max_value=63),
        rs2=st.integers(min_value=0, max_value=63),
        imm=st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1))


class TestRoundTrip:
    @given(_instruction_strategy())
    def test_encode_decode_round_trip(self, inst):
        assert decode(encode(inst)) == inst

    def test_negative_immediate(self):
        inst = Instruction(Op.ADDI, rd=1, rs1=2, imm=-12345)
        assert decode(encode(inst)).imm == -12345

    def test_extreme_immediates(self):
        for imm in (-(1 << 31), (1 << 31) - 1, 0):
            inst = Instruction(Op.ADDI, rd=1, rs1=0, imm=imm)
            assert decode(encode(inst)).imm == imm

    def test_none_registers_survive(self):
        inst = Instruction(Op.J, imm=99)
        decoded = decode(encode(inst))
        assert decoded.rd is None and decoded.rs1 is None


class TestErrors:
    def test_immediate_out_of_range(self):
        inst = Instruction(Op.ADDI, rd=1, rs1=0, imm=1 << 31)
        with pytest.raises(EncodingError):
            encode(inst)

    def test_unknown_opcode_field(self):
        with pytest.raises(EncodingError):
            decode(0xFF << 56)

    def test_word_out_of_range(self):
        with pytest.raises(EncodingError):
            decode(1 << 64)
        with pytest.raises(EncodingError):
            decode(-1)

    def test_inconsistent_operand_fields(self):
        # A store must not carry a destination register.
        word = encode(Instruction(Op.SW, rs1=1, rs2=2, imm=0))
        word |= 5 << 49  # forge an rd field
        with pytest.raises(EncodingError):
            decode(word)


class TestProgramHelpers:
    def test_encode_decode_program(self):
        from repro.isa.encoding import (decode_program_text,
                                        encode_program_text)
        text = [Instruction(Op.ADDI, rd=1, rs1=0, imm=5),
                Instruction(Op.HALT)]
        assert decode_program_text(encode_program_text(text)) == text
