"""Fetch-unit tests: prediction plumbing, line limits, stalls."""

from repro.isa.builder import ProgramBuilder
from repro.isa.opcodes import Op
from repro.memory.hierarchy import MemoryHierarchy
from repro.uarch.config import MachineConfig
from repro.uarch.fetch import FetchUnit


def _unit(program, **config_overrides):
    config = MachineConfig(**config_overrides)
    return FetchUnit(program, config, MemoryHierarchy(config.hierarchy))


def _straight_line(n=32):
    builder = ProgramBuilder()
    for i in range(n):
        builder.emit(Op.ADDI, rd=1, rs1=1, imm=1)
    builder.halt()
    return builder.build()


def _warm(unit, cycle=1):
    """First access misses the I-cache; run one stalled cycle."""
    records = unit.fetch_cycle(cycle, 8)
    assert records == []  # cold I-cache miss
    return unit.stall_until


class TestBasicFetch:
    def test_cold_miss_stalls(self):
        unit = _unit(_straight_line())
        assert unit.fetch_cycle(1, 8) == []
        assert unit.stall_until > 1

    def test_fetches_after_fill(self):
        unit = _unit(_straight_line())
        resume = _warm(unit)
        records = unit.fetch_cycle(resume, 8)
        assert len(records) == 8
        assert [r.pc for r in records] == list(range(8))

    def test_budget_respected(self):
        unit = _unit(_straight_line())
        resume = _warm(unit)
        assert len(unit.fetch_cycle(resume, 3)) == 3

    def test_line_boundary_limits_fetch(self):
        unit = _unit(_straight_line())
        resume = _warm(unit)
        unit.fetch_cycle(resume, 8)          # pc 0..7 (one 64B line)
        records = unit.fetch_cycle(resume + 1, 8)
        if not records:  # the next line itself missed: wait for fill
            records = unit.fetch_cycle(unit.stall_until, 8)
        # Next line starts at 8; again at most one line per cycle.
        assert records[0].pc == 8
        assert len(records) <= 8

    def test_halt_freezes_fetch(self):
        builder = ProgramBuilder()
        builder.emit(Op.ADDI, rd=1, rs1=0, imm=1)
        builder.halt()
        unit = _unit(builder.build())
        resume = _warm(unit)
        records = unit.fetch_cycle(resume, 8)
        assert records[-1].inst.is_halt
        assert unit.halted
        assert unit.fetch_cycle(resume + 1, 8) == []

    def test_redirect_unfreezes(self):
        builder = ProgramBuilder()
        builder.halt()
        unit = _unit(builder.build())
        resume = _warm(unit)
        unit.fetch_cycle(resume, 8)
        assert unit.halted
        unit.redirect(0, resume + 1)
        assert not unit.halted
        assert unit.pc == 0


class TestControlRules:
    def _loop_program(self):
        builder = ProgramBuilder()
        builder.label("top")
        builder.emit(Op.ADDI, rd=1, rs1=1, imm=1)
        builder.branch(Op.BNE, rs1=1, rs2=0, target="top")
        builder.emit(Op.ADDI, rd=2, rs1=2, imm=1)
        builder.branch(Op.BNE, rs1=2, rs2=0, target="top")
        builder.halt()
        return builder.build()

    def test_one_prediction_per_cycle(self):
        unit = _unit(self._loop_program())
        resume = _warm(unit)
        records = unit.fetch_cycle(resume, 8)
        branches = [r for r in records if r.inst.is_branch]
        assert len(branches) <= 1

    def test_taken_prediction_redirects_stream(self):
        unit = _unit(self._loop_program())
        resume = _warm(unit)
        records = unit.fetch_cycle(resume, 8)
        if records[-1].pred_taken:
            assert unit.pc == records[-1].pred_npc

    def test_direct_jump_target_known_at_fetch(self):
        builder = ProgramBuilder()
        builder.jump("target")
        builder.emit(Op.ADDI, rd=1, rs1=0, imm=1)
        builder.label("target")
        builder.halt()
        unit = _unit(builder.build())
        resume = _warm(unit)
        records = unit.fetch_cycle(resume, 8)
        assert records[0].pred_npc == 2  # jumps are never mispredicted

    def test_return_predicted_through_ras(self):
        builder = ProgramBuilder()
        builder.jump("func", link_reg=31)   # jal pushes pc+1 = 1
        builder.halt()
        builder.label("func")
        builder.emit(Op.JR, rs1=31)
        unit = _unit(builder.build())
        resume = _warm(unit)
        unit.fetch_cycle(resume, 8)
        # After following jal to func, the jr should pop 1 from the RAS.
        records = unit.fetch_cycle(resume + 1, 8)
        jr_records = [r for r in records if r.inst.op == Op.JR]
        if jr_records:
            assert jr_records[0].pred_npc == 1

    def test_indirect_without_btb_falls_through(self):
        builder = ProgramBuilder()
        builder.emit(Op.JR, rs1=5)  # not a return: BTB miss
        builder.halt()
        unit = _unit(builder.build())
        resume = _warm(unit)
        records = unit.fetch_cycle(resume, 8)
        assert records[0].pred_npc == 1  # fall-through guess

    def test_btb_training_improves_indirect_prediction(self):
        builder = ProgramBuilder()
        builder.emit(Op.JR, rs1=5)
        builder.halt()
        builder.halt()
        program = builder.build()
        unit = _unit(program)
        resume = _warm(unit)
        unit.train_commit(
            type("G", (), {"inst": program.text[0], "pc": 0})(), 2, True)
        records = unit.fetch_cycle(resume, 8)
        assert records[0].pred_npc == 2


class TestWrongPath:
    def test_off_text_fetch_starves(self):
        unit = _unit(_straight_line(4))
        resume = _warm(unit)
        unit.redirect(1000, resume)
        assert unit.fetch_cycle(resume + 1, 8) == []

    def test_ras_snapshot_restores(self):
        unit = _unit(_straight_line())
        unit.ras.push(42)
        snap = unit.ras.snapshot()
        unit.ras.pop()
        unit.restore_ras(snap)
        assert unit.ras.pop() == 42
