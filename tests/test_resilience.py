"""The resilience layer: retry/backoff, circuit breaking, heartbeat
liveness, the retrying store decorator, and the pool supervisor.

The primitives are tested with fake clocks (no wall-clock sleeps); the
:class:`PoolSupervisor` tests run a real ``ProcessPoolExecutor`` and
really kill/hang its workers, because the recovery path under test is
exactly the interaction with a broken pool.
"""

import json
import os
import signal
import time

import pytest

from repro.campaign.store import JSONLStore, RetryingStore
from repro.errors import ConfigError, ResilienceError, TrialHangError
from repro.resilience import (CLOSED, HALF_OPEN, OPEN, CircuitBreaker,
                              Heartbeat, HeartbeatMonitor, RetryBudget,
                              RetryPolicy)
from repro.resilience.watchdog import PoolSupervisor


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, delta):
        self.now += delta


# -- RetryPolicy -------------------------------------------------------------

class TestRetryPolicy:
    def test_delays_grow_exponentially_within_jitter(self):
        policy = RetryPolicy(attempts=5, base_delay=1.0, multiplier=2.0,
                             jitter=0.1, seed=7)
        delays = [policy.delay(attempt) for attempt in range(4)]
        for attempt, delay in enumerate(delays):
            nominal = 2.0 ** attempt
            assert nominal * 0.9 <= delay <= nominal * 1.1

    def test_delays_are_deterministic_per_seed_and_token(self):
        policy = RetryPolicy(seed=7)
        assert [policy.delay(i, token="a") for i in range(4)] \
            == [policy.delay(i, token="a") for i in range(4)]
        assert policy.delay(1, token="a") != policy.delay(1, token="b")
        assert RetryPolicy(seed=7).delay(1) != RetryPolicy(seed=8).delay(1)

    def test_delay_is_capped_at_max_delay(self):
        policy = RetryPolicy(attempts=10, base_delay=1.0,
                             multiplier=10.0, max_delay=5.0, jitter=0.0)
        assert policy.delay(6) == 5.0

    def test_call_retries_then_succeeds(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "ok"

        slept = []
        policy = RetryPolicy(attempts=3, base_delay=0.5, jitter=0.0)
        assert policy.call(flaky, sleep=slept.append) == "ok"
        assert len(calls) == 3
        assert slept == [0.5, 1.0]

    def test_call_exhausts_attempts_and_reraises(self):
        policy = RetryPolicy(attempts=2, base_delay=0.1, jitter=0.0)
        with pytest.raises(OSError):
            policy.call(lambda: (_ for _ in ()).throw(OSError("x")),
                        sleep=lambda _d: None)

    def test_call_does_not_retry_unlisted_exceptions(self):
        calls = []

        def boom():
            calls.append(1)
            raise ValueError("not transient")

        policy = RetryPolicy(attempts=5)
        with pytest.raises(ValueError):
            policy.call(boom, sleep=lambda _d: None)
        assert len(calls) == 1

    def test_call_respects_refused_budget(self):
        budget = RetryBudget(capacity=1, refill_per_second=0.0,
                             clock=FakeClock())
        calls = []

        def flaky():
            calls.append(1)
            raise OSError("transient")

        policy = RetryPolicy(attempts=5, base_delay=0.01, jitter=0.0)
        with pytest.raises(OSError):
            policy.call(flaky, sleep=lambda _d: None, budget=budget)
        # One initial call, one budgeted retry, then the budget is dry.
        assert len(calls) == 2
        assert budget.refused == 1

    def test_round_trip(self):
        policy = RetryPolicy(attempts=4, base_delay=0.3, max_delay=9.0,
                             multiplier=3.0, jitter=0.2, seed=11)
        assert RetryPolicy.from_dict(policy.to_dict()) == policy

    @pytest.mark.parametrize("kwargs", [
        {"attempts": 0}, {"base_delay": -0.1}, {"multiplier": 0.5},
        {"jitter": -0.1}, {"jitter": 1.5}, {"max_delay": -1.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            RetryPolicy(**kwargs)


class TestRetryBudget:
    def test_spends_down_then_refuses(self):
        clock = FakeClock()
        budget = RetryBudget(capacity=2, refill_per_second=1.0,
                             clock=clock)
        assert budget.try_spend()
        assert budget.try_spend()
        assert not budget.try_spend()
        assert (budget.spent, budget.refused) == (2, 1)

    def test_refills_over_time_up_to_capacity(self):
        clock = FakeClock()
        budget = RetryBudget(capacity=2, refill_per_second=0.5,
                             clock=clock)
        budget.try_spend()
        budget.try_spend()
        clock.advance(2.0)              # +1 token
        assert budget.try_spend()
        assert not budget.try_spend()
        clock.advance(100.0)            # clamped at capacity
        assert budget.tokens == 2.0


# -- CircuitBreaker ----------------------------------------------------------

class TestCircuitBreaker:
    def test_trips_open_after_threshold_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=2,
                                 recovery_time=10.0, clock=clock)
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_half_open_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1,
                                 recovery_time=5.0, clock=clock)
        breaker.record_failure()
        clock.advance(5.1)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()          # the single probe
        assert not breaker.allow()      # concurrent calls held back
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1,
                                 recovery_time=5.0, clock=clock)
        breaker.record_failure()
        clock.advance(5.1)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.trips == 2

    def test_success_resets_the_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=2,
                                 recovery_time=1.0, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED


# -- Heartbeat / HeartbeatMonitor --------------------------------------------

class TestHeartbeat:
    def test_beat_writes_pid_seq_and_progress(self, tmp_path):
        path = str(tmp_path / "hb")
        heartbeat = Heartbeat(path, interval=1.0, clock=FakeClock())
        heartbeat.beat(progress=3, force=True)
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["pid"] == os.getpid()
        assert payload["seq"] == 1
        assert payload["progress"] == 3

    def test_beats_are_throttled_but_progress_always_lands(self,
                                                           tmp_path):
        clock = FakeClock()
        path = str(tmp_path / "hb")
        heartbeat = Heartbeat(path, interval=1.0, clock=clock)
        heartbeat.beat(progress=0, force=True)
        heartbeat.beat(progress=0)      # throttled: same progress
        with open(path) as handle:
            assert json.load(handle)["seq"] == 1
        heartbeat.beat(progress=1)      # progress changed: written
        with open(path) as handle:
            assert json.load(handle)["progress"] == 1
        clock.advance(1.1)
        heartbeat.beat(progress=1)      # interval elapsed: written
        with open(path) as handle:
            assert json.load(handle)["seq"] == 3

    def test_clear_removes_the_file(self, tmp_path):
        path = str(tmp_path / "hb")
        heartbeat = Heartbeat(path, clock=FakeClock())
        heartbeat.beat(force=True)
        heartbeat.clear()
        assert not os.path.exists(path)


class TestHeartbeatMonitor:
    def test_expires_without_beats(self, tmp_path):
        clock = FakeClock()
        monitor = HeartbeatMonitor(str(tmp_path / "hb"), lease=2.0,
                                   clock=clock)
        assert not monitor.expired()
        clock.advance(2.1)
        assert monitor.expired()

    def test_payload_change_renews_the_lease(self, tmp_path):
        clock = FakeClock()
        path = str(tmp_path / "hb")
        heartbeat = Heartbeat(path, interval=0.1, clock=clock)
        monitor = HeartbeatMonitor(path, lease=2.0, clock=clock)
        for _ in range(3):
            clock.advance(1.5)
            heartbeat.beat(force=True)
            assert not monitor.expired()
        clock.advance(2.1)              # now nothing beats
        assert monitor.expired()

    def test_external_progress_renews_without_beats(self, tmp_path):
        # A worker stuck inside one long trial writes no heartbeat,
        # but the driver sees its store grow: that is progress too.
        clock = FakeClock()
        monitor = HeartbeatMonitor(str(tmp_path / "hb"), lease=2.0,
                                   clock=clock)
        clock.advance(1.5)
        assert not monitor.expired(progress=1)
        clock.advance(1.5)
        assert not monitor.expired(progress=2)
        clock.advance(2.1)
        assert monitor.expired(progress=2)


# -- RetryingStore -----------------------------------------------------------

class FlakyStore(JSONLStore):
    """Fails the first ``failures`` appends/loads with OSError."""

    def __init__(self, path, failures=2):
        super().__init__(path)
        self.failures = failures
        self.attempts = 0

    def append(self, record):
        self.attempts += 1
        if self.attempts <= self.failures:
            raise OSError("injected write failure %d" % self.attempts)
        super().append(record)


class TestRetryingStore:
    def test_transient_append_failures_are_retried(self, tmp_path):
        flaky = FlakyStore(str(tmp_path / "s.jsonl"), failures=2)
        store = RetryingStore(flaky, policy=RetryPolicy(
            attempts=3, base_delay=0.001, jitter=0.0))
        store.append({"key": "k1", "outcome": "masked"})
        assert store.retried == 2
        assert [r["key"] for r in store.load()] == ["k1"]
        assert store.completed_keys() == {"k1"}

    def test_persistent_failures_reraise(self, tmp_path):
        flaky = FlakyStore(str(tmp_path / "s.jsonl"), failures=99)
        store = RetryingStore(flaky, policy=RetryPolicy(
            attempts=2, base_delay=0.001, jitter=0.0))
        with pytest.raises(OSError):
            store.append({"key": "k1"})

    def test_delegates_the_whole_backend_surface(self, tmp_path):
        inner = JSONLStore(str(tmp_path / "s.jsonl"))
        store = RetryingStore(inner)
        assert not store.exists
        store.truncate()
        store.append({"key": "a", "outcome": "masked"})
        store.append({"key": "a", "outcome": "masked"})
        assert store.exists
        assert store.path == inner.path
        kept, dropped = store.compact()
        assert (kept, dropped) == (1, 1)


# -- PoolSupervisor ----------------------------------------------------------
#
# Worker functions must be module-level (pickled into the pool).  The
# cross-process state that makes "fail once, succeed on resubmit"
# deterministic is a flag file handed in via the payload.

def _work_ok(payload):
    return {"key": payload["key"], "value": payload["key"].upper()}


def _die_once(payload):
    flag = payload["flag"]
    if not os.path.exists(flag):
        with open(flag, "w"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return {"key": payload["key"], "value": "recovered"}


def _hang_once(payload):
    flag = payload["flag"]
    if not os.path.exists(flag):
        with open(flag, "w"):
            pass
        time.sleep(600)
    return {"key": payload["key"], "value": "recovered"}


def _hang_forever(payload):
    time.sleep(600)


class SupervisedPool:
    """A tiny stand-in for the session/backend pool holders."""

    def __init__(self, workers=1):
        self.workers = workers
        self.pool = None
        self.resets = 0

    def get(self):
        from concurrent.futures import ProcessPoolExecutor
        if self.pool is None:
            self.pool = ProcessPoolExecutor(max_workers=self.workers)
        return self.pool

    def reset(self, broken=None):
        pool = self.pool
        if pool is None or (broken is not None and pool is not broken):
            return
        self.pool = None
        self.resets += 1
        pool.shutdown(wait=False, cancel_futures=True)

    def shutdown(self):
        if self.pool is not None:
            self.pool.shutdown(wait=True, cancel_futures=True)
            self.pool = None


class TestPoolSupervisor:
    def test_plain_results_come_back_with_context(self):
        holder = SupervisedPool()
        supervisor = PoolSupervisor(get_pool=holder.get,
                                    reset_pool=holder.reset)
        try:
            supervisor.submit("a", _work_ok, {"key": "a"}, context="A")
            supervisor.submit("b", _work_ok, {"key": "b"}, context="B")
            results = dict(supervisor.drain())
        finally:
            holder.shutdown()
        assert results == {"A": {"key": "a", "value": "A"},
                           "B": {"key": "b", "value": "B"}}

    def test_killed_worker_rebuilds_pool_and_resubmits(self, tmp_path):
        holder = SupervisedPool()
        resubmitted = []
        supervisor = PoolSupervisor(
            get_pool=holder.get, reset_pool=holder.reset,
            trial_retries=2,
            on_resubmit=lambda ctx, attempt: resubmitted.append(ctx))
        try:
            supervisor.submit("k", _die_once,
                              {"key": "k",
                               "flag": str(tmp_path / "died")},
                              context="K")
            results = dict(supervisor.drain())
        finally:
            holder.shutdown()
        assert results == {"K": {"key": "k", "value": "recovered"}}
        assert resubmitted == ["K"]
        assert supervisor.recoveries >= 1
        assert holder.resets >= 1

    def test_hung_trial_is_killed_and_resubmitted(self, tmp_path):
        holder = SupervisedPool()
        supervisor = PoolSupervisor(
            get_pool=holder.get, reset_pool=holder.reset,
            trial_timeout=1.0, trial_retries=2)
        try:
            supervisor.submit("k", _hang_once,
                              {"key": "k",
                               "flag": str(tmp_path / "hung")},
                              context="K")
            results = dict(supervisor.drain())
        finally:
            holder.shutdown()
        assert results == {"K": {"key": "k", "value": "recovered"}}
        assert supervisor.hangs >= 1

    def test_trial_hanging_past_its_retry_budget_raises(self):
        holder = SupervisedPool()
        supervisor = PoolSupervisor(
            get_pool=holder.get, reset_pool=holder.reset,
            trial_timeout=0.5, trial_retries=0)
        try:
            supervisor.submit("k", _hang_forever, {"key": "k"})
            with pytest.raises(TrialHangError):
                supervisor.drain()
        finally:
            holder.shutdown()

    def test_trial_hang_error_is_a_resilience_error(self):
        assert issubclass(TrialHangError, ResilienceError)


# -- ExecutionOptions resilience fields --------------------------------------

class TestExecutionOptionsResilience:
    def test_defaults_leave_the_wire_form_unchanged(self):
        # Worker payloads and persisted job files from pre-resilience
        # runs must stay loadable: at defaults, none of the new
        # fields appear on the wire.
        from repro.campaign import ExecutionOptions
        wire = ExecutionOptions().to_dict()
        assert "trial_timeout" not in wire
        assert "trial_retries" not in wire
        assert "store_retry" not in wire
        assert ExecutionOptions.from_dict(wire) == ExecutionOptions()

    def test_resilience_fields_round_trip(self):
        from repro.campaign import ExecutionOptions
        options = ExecutionOptions(
            trial_timeout=4.0, trial_retries=5,
            store_retry=RetryPolicy(attempts=2, base_delay=0.5))
        wire = json.loads(json.dumps(options.to_dict(),
                                     sort_keys=True))
        clone = ExecutionOptions.from_dict(wire)
        assert clone == options
        assert clone.store_retry == RetryPolicy(attempts=2,
                                                base_delay=0.5)
