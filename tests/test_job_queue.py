"""Job model persistence and the multi-tenant priority queue."""

import json
import os

import pytest

from repro.campaign import CampaignSpec, ExecutionOptions, SamplingPlan
from repro.errors import ConfigError, QuotaError, ServiceError
from repro.service.jobs import (CANCELLED, DONE, INTERRUPTED, Job,
                                JobQueue, QUEUED, RUNNING, new_job_id)
from repro.service.scheduler import FairScheduler, TenantConfig


def tiny_spec(name="queued"):
    return CampaignSpec(name=name, workloads=("gcc",),
                        models=("SS-1",), rates_per_million=(0.0,),
                        replicates=2, instructions=200)


def make_job(tenant="alice", **kwargs):
    kwargs.setdefault("id", new_job_id())
    kwargs.setdefault("spec", tiny_spec())
    return Job(tenant=tenant, **kwargs)


class TestJobModel:
    def test_round_trip_with_options(self):
        job = make_job(priority=3, shards=2, state=INTERRUPTED,
                       options=ExecutionOptions(
                           workers=2, sampling=SamplingPlan.wilson(0.1),
                           poll_interval=0.01),
                       done=5, total=9, submitted_at=123.0,
                       started_at=124.0, error="")
        clone = Job.from_dict(json.loads(
            json.dumps(job.to_dict(), sort_keys=True)))
        assert clone == job

    def test_unknown_fields_rejected(self):
        wire = make_job().to_dict()
        wire["mystery"] = 1
        with pytest.raises(ConfigError, match="mystery"):
            Job.from_dict(wire)

    @pytest.mark.parametrize("kwargs", [
        {"priority": "high"}, {"shards": -1}, {"shards": True},
        {"state": "limbo"},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            make_job(**kwargs)

    def test_save_load_round_trip(self, tmp_path):
        job = make_job(priority=1)
        job.save(str(tmp_path))
        loaded = Job.load(str(tmp_path), job.id)
        assert loaded == job
        # Atomic save leaves no tmp droppings behind.
        assert os.listdir(job.job_dir(str(tmp_path))) == ["job.json"]

    def test_load_unknown_job_raises(self, tmp_path):
        with pytest.raises(ServiceError, match="unknown job"):
            Job.load(str(tmp_path), "job-nope")

    def test_load_corrupt_job_raises(self, tmp_path):
        job = make_job()
        job.save(str(tmp_path))
        with open(os.path.join(job.job_dir(str(tmp_path)),
                               "job.json"), "w") as handle:
            handle.write("{torn")
        with pytest.raises(ServiceError, match="corrupt"):
            Job.load(str(tmp_path), job.id)

    def test_terminal_states(self):
        assert make_job(state=DONE).terminal
        assert make_job(state=CANCELLED).terminal
        assert not make_job(state=RUNNING).terminal
        assert not make_job(state=INTERRUPTED).terminal

    def test_paths_live_under_the_job_dir(self, tmp_path):
        job = make_job()
        root = job.job_dir(str(tmp_path))
        assert job.store_path(str(tmp_path)).startswith(root)
        assert job.events_path(str(tmp_path)).startswith(root)
        assert job.shards_dir(str(tmp_path)).startswith(root)


class TestJobQueue:
    def queue(self, *tenants):
        return JobQueue(FairScheduler(2, tenants))

    def test_priority_then_fifo(self):
        queue = self.queue()
        low1 = queue.submit(make_job(priority=0))
        high = queue.submit(make_job(priority=5))
        low2 = queue.submit(make_job(priority=0))
        claimed = [queue.next_runnable().id for _ in range(3)]
        assert claimed == [high.id, low1.id, low2.id]
        assert queue.next_runnable() is None

    def test_max_running_quota_skips_but_serves_others(self):
        queue = self.queue(TenantConfig("alice", max_running=1),
                           TenantConfig("bob"))
        queue.submit(make_job("alice", priority=9))
        blocked = queue.submit(make_job("alice", priority=9))
        served = queue.submit(make_job("bob", priority=0))
        first = queue.next_runnable()
        assert first.tenant == "alice"
        # alice is at quota: her second (higher-priority) job waits,
        # bob's lower-priority job runs instead of convoying.
        second = queue.next_runnable()
        assert second.id == served.id
        assert queue.next_runnable() is None
        first.state = DONE
        assert queue.next_runnable().id == blocked.id

    def test_max_queued_quota_raises(self):
        queue = self.queue(TenantConfig("alice", max_queued=1))
        queue.submit(make_job("alice"))
        with pytest.raises(QuotaError, match="quota"):
            queue.submit(make_job("alice"))
        # Other tenants are unaffected.
        queue.submit(make_job("bob"))

    def test_duplicate_id_rejected(self):
        queue = self.queue()
        job = queue.submit(make_job(id="job-dup"))
        with pytest.raises(ServiceError, match="duplicate"):
            queue.submit(make_job(id="job-dup"))
        assert queue.get(job.id) is job

    def test_get_unknown_raises(self):
        with pytest.raises(ServiceError, match="unknown job"):
            self.queue().get("job-nope")

    def test_jobs_filters_by_tenant_in_seq_order(self):
        queue = self.queue()
        a1 = queue.submit(make_job("alice"))
        b1 = queue.submit(make_job("bob"))
        a2 = queue.submit(make_job("alice"))
        assert [job.id for job in queue.jobs("alice")] == [a1.id, a2.id]
        assert [job.id for job in queue.jobs()] == [a1.id, b1.id, a2.id]

    def test_counts(self):
        queue = self.queue()
        queue.submit(make_job("alice"))
        done = queue.submit(make_job("alice"))
        done.state = DONE
        counts = queue.counts("alice")
        assert counts[QUEUED] == 1 and counts[DONE] == 1

    def test_adopted_jobs_count_toward_quotas_after_recovery(
            self, tmp_path):
        """SIGKILL-then-recover must not forget quota accounting: a
        job that round-tripped through ``job.json`` and was adopted
        by a fresh queue counts toward ``max_queued`` and
        ``max_running`` exactly like a freshly submitted one."""
        data_dir = str(tmp_path)
        survivor = make_job("alice")
        survivor.save(data_dir)
        interrupted = make_job("alice", state=RUNNING)
        interrupted.save(data_dir)
        # The service process is SIGKILL'd here; a fresh queue adopts
        # from disk (recovery re-queues non-terminal jobs).
        queue = self.queue(TenantConfig("alice", max_queued=1,
                                        max_running=1))
        for name in sorted(os.listdir(os.path.join(data_dir, "jobs"))):
            job = Job.load(data_dir, name)
            if job.state == RUNNING:
                job.state = QUEUED
            queue.adopt(job)
        # Two adopted queued jobs: alice is over max_queued already,
        # so a new submission is refused instead of silently growing
        # the backlog past the quota.
        with pytest.raises(QuotaError):
            queue.submit(make_job("alice"))
        # max_running still paces admission of the adopted jobs.
        first = queue.next_runnable()
        assert first is not None and first.tenant == "alice"
        assert queue.next_runnable() is None
        first.state = DONE
        assert queue.next_runnable() is not None

    def test_adopt_skips_quota_and_orders_by_adoption(self):
        queue = self.queue(TenantConfig("alice", max_queued=1))
        recovered = make_job("alice")
        queue.adopt(recovered)
        queue.adopt(make_job("alice"))       # would violate max_queued
        assert queue.next_runnable().id == recovered.id
