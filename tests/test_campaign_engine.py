"""Campaign engine: end-to-end runs, resume, worker-count determinism.

Exercises the deprecated ``run_campaign`` wrapper on purpose — it must
stay byte-identical to the :class:`CampaignSession` path it delegates
to — so its DeprecationWarning is silenced module-wide.
"""

import pytest

pytestmark = pytest.mark.filterwarnings(
    "ignore:run_campaign:DeprecationWarning")

from repro.campaign import (CampaignSpec, ResultStore, aggregate,
                            cells_to_json, run_campaign)
from repro.campaign.outcome import OUTCOMES
from repro.errors import ConfigError


def small_spec(**overrides):
    kwargs = dict(workloads=("gcc",), models=("SS-1", "SS-2"),
                  rates_per_million=(0.0, 20_000.0), replicates=2,
                  instructions=600)
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


class TestSerialRun:
    def test_end_to_end_with_store(self, tmp_path):
        spec = small_spec()
        store = ResultStore(str(tmp_path / "r.jsonl"))
        result = run_campaign(spec, store=store)
        assert result.executed == spec.grid_size
        assert result.skipped == 0
        assert len(result.records) == spec.grid_size
        # Records come back in spec-expansion order...
        expected = [t.key for t in spec.trials()]
        assert [r["key"] for r in result.records] == expected
        # ...every outcome is a known class...
        assert all(r["outcome"] in OUTCOMES for r in result.records)
        # ...and the store holds one intact line per trial.
        assert store.completed_keys() == set(expected)

    def test_progress_callback(self):
        spec = small_spec(models=("SS-2",), replicates=1)
        seen = []
        run_campaign(spec,
                     progress=lambda done, total, record:
                     seen.append((done, total)))
        assert seen == [(i + 1, spec.grid_size)
                        for i in range(spec.grid_size)]

    def test_aggregate_cells_cover_grid(self):
        spec = small_spec()
        cells = aggregate(run_campaign(spec).records)
        assert len(cells) == (len(spec.workloads) * len(spec.models)
                              * len(spec.rates_per_million))
        for cell in cells:
            assert cell.n == spec.replicates
            assert sum(cell.counts.values()) == cell.n

    def test_validation(self):
        with pytest.raises(ConfigError):
            run_campaign(small_spec(), workers=0)
        with pytest.raises(ConfigError):
            run_campaign(small_spec(), resume=True)  # no store


class TestResume:
    def test_killed_campaign_resumes_without_rerunning(self, tmp_path):
        spec = small_spec()
        path = str(tmp_path / "r.jsonl")
        full = run_campaign(spec, store=ResultStore(path))
        # Simulate a mid-run kill: keep only the first 3 completed
        # records (plus a torn tail from the dying writer).
        with open(path) as handle:
            lines = handle.readlines()
        with open(path, "w") as handle:
            handle.writelines(lines[:3])
            handle.write(lines[3][:25])
        store = ResultStore(path)
        assert len(store.completed_keys()) == 3
        resumed = run_campaign(spec, store=store, resume=True)
        assert resumed.skipped == 3
        assert resumed.executed == spec.grid_size - 3
        assert len(store.completed_keys()) == spec.grid_size
        # The resumed campaign reconstructs the exact same results.
        assert cells_to_json(aggregate(resumed.records)) \
            == cells_to_json(aggregate(full.records))

    def test_fresh_run_refuses_nonempty_store(self, tmp_path):
        # Completed records may be hours of work: without resume=True
        # the engine refuses to clobber them instead of truncating.
        spec = small_spec(models=("SS-2",), replicates=1)
        store = ResultStore(str(tmp_path / "r.jsonl"))
        store.append({"key": "stale-key", "outcome": "masked"})
        with pytest.raises(ConfigError):
            run_campaign(spec, store=store, resume=False)
        assert "stale-key" in store.completed_keys()

    def test_fresh_run_accepts_empty_or_missing_store(self, tmp_path):
        spec = small_spec(models=("SS-2",), replicates=1)
        missing = ResultStore(str(tmp_path / "missing.jsonl"))
        result = run_campaign(spec, store=missing, resume=False)
        assert result.executed == spec.grid_size
        # A store holding only garbage lines (no completed trials) is
        # safe to truncate too.
        garbage = ResultStore(str(tmp_path / "garbage.jsonl"))
        with open(garbage.path, "w") as handle:
            handle.write("not json\n")
        result = run_campaign(spec, store=garbage, resume=False)
        assert result.executed == spec.grid_size

    def test_fully_complete_campaign_runs_nothing(self, tmp_path):
        spec = small_spec(models=("SS-2",), replicates=1)
        store = ResultStore(str(tmp_path / "r.jsonl"))
        run_campaign(spec, store=store)
        again = run_campaign(spec, store=store, resume=True)
        assert again.executed == 0
        assert again.skipped == spec.grid_size


class TestDeterminism:
    def test_worker_count_does_not_change_results(self):
        # The satellite requirement: workers=1 and workers=4 produce
        # byte-identical aggregated results (per-trial seeds derive
        # from trial keys, never from worker scheduling order).
        spec = small_spec()
        serial = run_campaign(spec, workers=1)
        parallel = run_campaign(spec, workers=4)
        assert [r["key"] for r in serial.records] \
            == [r["key"] for r in parallel.records]
        assert serial.records == parallel.records
        assert cells_to_json(aggregate(serial.records)) \
            == cells_to_json(aggregate(parallel.records))
