"""Multi-shard orchestrator: merged equivalence, worker restart after
a kill, resume-from-stores, failure budgets and the session facade.

The headline fault-injection test kills one shard worker with SIGKILL
mid-campaign and asserts the driver restarts it from its store and the
merged result matches a single-session run key-for-key — the property
that makes unattended multi-host sweeps trustworthy.
"""

import json
import os
import signal

import pytest

from repro.campaign import (CampaignOrchestrator, CampaignSession,
                            CampaignSpec, ExecutionOptions,
                            SamplingPlan, TRIAL_FINISHED, aggregate,
                            cells_to_json, shard_store_path)
from repro.campaign.orchestrator import (CLI_MODE, SHARD_FINISHED,
                                         SHARD_HUNG, SHARD_RESTARTED,
                                         SHARD_STARTED, _run_shard)
from repro.errors import ConfigError, OrchestratorError
from repro.resilience import RetryPolicy


def orchestrated_spec(replicates=4, instructions=1_000,
                      name="orchestrated"):
    return CampaignSpec(name=name, workloads=("gcc",),
                        models=("SS-1", "SS-2"),
                        rates_per_million=(0.0, 3000.0),
                        replicates=replicates,
                        instructions=instructions)


def canonical(records):
    return json.dumps(records, sort_keys=True)


@pytest.fixture(scope="module")
def single_session_result():
    """The 16-trial single-session baseline every merge is held to."""
    return CampaignSession(orchestrated_spec()).run()


class TestValidation:
    def test_rejects_shard_view(self, tmp_path):
        spec = orchestrated_spec()
        with pytest.raises(ConfigError):
            CampaignOrchestrator(spec.shard(0, 2), shards=2,
                                 store_dir=str(tmp_path))

    @pytest.mark.parametrize("kwargs", [
        {"shards": 0}, {"shards": 1.5}, {"mode": "ssh"},
        {"poll_interval": 0.0}, {"max_restarts": -1},
    ])
    def test_bad_parameters_refused(self, kwargs, tmp_path):
        parameters = dict(shards=2, store_dir=str(tmp_path))
        parameters.update(kwargs)
        with pytest.raises(ConfigError):
            CampaignOrchestrator(orchestrated_spec(), **parameters)

    def test_cli_mode_refuses_unforwardable_options(self, tmp_path):
        with pytest.raises(ConfigError):
            CampaignOrchestrator(
                orchestrated_spec(), shards=2,
                store_dir=str(tmp_path), mode=CLI_MODE,
                options=ExecutionOptions(simulator="reference",
                                         golden_cache=False,
                                         reuse_faultfree=False))


class TestMergedEquivalence:
    def test_two_shards_match_single_session(self, tmp_path,
                                             single_session_result):
        spec = orchestrated_spec()
        orchestrator = CampaignOrchestrator(
            spec, shards=2, store_dir=str(tmp_path),
            poll_interval=0.05)
        events = []
        orchestrator.subscribe(events.append)
        result = orchestrator.run()
        assert canonical(result.records) \
            == canonical(single_session_result.records)
        assert cells_to_json(aggregate(result.records)) \
            == cells_to_json(aggregate(single_session_result.records))
        kinds = [event.kind for event in events]
        assert kinds.count(SHARD_STARTED) == 2
        assert kinds.count(SHARD_FINISHED) == 2
        assert kinds.count(TRIAL_FINISHED) == 16
        shards = {event.shard for event in events
                  if event.kind == TRIAL_FINISHED}
        assert shards == {0, 1}
        # Every shard store holds its own partition, disjointly.
        seen = [worker.seen for worker in orchestrator.workers]
        assert not (seen[0] & seen[1])
        assert len(seen[0] | seen[1]) == 16

    def test_session_orchestrate_facade(self, tmp_path,
                                        single_session_result):
        session = CampaignSession(orchestrated_spec())
        result = session.orchestrate(shards=2,
                                     store_dir=str(tmp_path),
                                     poll_interval=0.05)
        assert canonical(result.records) \
            == canonical(single_session_result.records)
        # After orchestrate the session behaves as after run().
        assert session.result is result
        assert cells_to_json(session.aggregate()) \
            == cells_to_json(aggregate(single_session_result.records))
        assert str(session.progress()) == "16/16 trials (100.0%)"

    def test_resumes_from_prior_shard_stores(self, tmp_path,
                                             single_session_result):
        """The orchestrator restarted after a crash of the *driver*:
        shard stores keep their records, only the gap is executed."""
        from repro.campaign import JSONLStore, shard_of_key
        spec = orchestrated_spec()
        prefix = single_session_result.records[:9]
        stores = [JSONLStore(shard_store_path(str(tmp_path), index, 2))
                  for index in range(2)]
        for record in prefix:
            stores[shard_of_key(record["key"], 2)].append(record)
        orchestrator = CampaignOrchestrator(
            spec, shards=2, store_dir=str(tmp_path),
            poll_interval=0.05)
        result = orchestrator.run()
        assert result.skipped == 9
        assert result.executed == 7
        assert canonical(result.records) \
            == canonical(single_session_result.records)

    def test_complete_shards_are_not_relaunched(self, tmp_path,
                                                single_session_result):
        """A fixed-plan shard whose store already covers its whole
        keyspace is marked finished at startup — no worker process is
        spawned just to resume into zero trials."""
        from repro.campaign import JSONLStore, shard_of_key
        stores = [JSONLStore(shard_store_path(str(tmp_path), index, 2))
                  for index in range(2)]
        for record in single_session_result.records:
            stores[shard_of_key(record["key"], 2)].append(record)
        orchestrator = CampaignOrchestrator(
            orchestrated_spec(), shards=2, store_dir=str(tmp_path),
            poll_interval=0.05)
        result = orchestrator.run()
        assert result.executed == 0
        assert result.skipped == 16
        assert all(worker.finished and worker.process is None
                   for worker in orchestrator.workers)
        assert canonical(result.records) \
            == canonical(single_session_result.records)


class TestKillAndRestart:
    def test_killed_worker_restarts_and_merges_key_for_key(
            self, tmp_path):
        """The ISSUE's fault-injection scenario: SIGKILL one shard
        worker mid-campaign; the driver must restart it from its store
        and the merged result must match a single-session run."""
        spec = orchestrated_spec(replicates=8, instructions=2_000,
                                 name="kill-test")
        single = CampaignSession(spec).run()
        orchestrator = CampaignOrchestrator(
            spec, shards=2, store_dir=str(tmp_path),
            poll_interval=0.05, max_restarts=2)
        killed = []

        @orchestrator.subscribe
        def assassin(event):
            # First flushed record: murder a still-running worker.
            if killed or event.kind != TRIAL_FINISHED:
                return
            for worker in orchestrator.workers:
                if worker.alive and not worker.finished:
                    try:
                        os.kill(worker.pid, signal.SIGKILL)
                    except ProcessLookupError:
                        continue      # lost the race; try the next
                    killed.append(worker.index)
                    return

        result = orchestrator.run()
        assert killed, "no worker was alive to kill mid-campaign"
        assert orchestrator.total_restarts >= 1
        restarted = orchestrator.workers[killed[0]]
        assert restarted.restarts >= 1
        assert restarted.finished
        # Key-for-key identical to the single-session run, byte for
        # byte — the restart resumed, it did not recompute differently
        # or drop the dead worker's flushed records.
        assert [r["key"] for r in result.records] \
            == [r["key"] for r in single.records]
        assert canonical(result.records) == canonical(single.records)

    def test_worker_dying_past_budget_fails_the_campaign(
            self, tmp_path):
        """A shard whose store path is unwritable dies on every
        launch; after max_restarts the orchestrator must raise (with
        the failing shard named), not hang or silently drop the
        shard."""
        spec = orchestrated_spec()
        # Make shard 0's store path a *directory*: the worker's very
        # first append crashes, deterministically, on every launch.
        os.makedirs(shard_store_path(str(tmp_path), 0, 2))
        orchestrator = CampaignOrchestrator(
            spec, shards=2, store_dir=str(tmp_path),
            poll_interval=0.05, max_restarts=1)
        events = []
        orchestrator.subscribe(events.append)
        with pytest.raises(OrchestratorError) as excinfo:
            orchestrator.run()
        assert "shard 0/2" in str(excinfo.value)
        assert sum(1 for event in events
                   if event.kind == SHARD_RESTARTED) == 1


class TestCrashLoopWindow:
    def test_uptime_past_min_uptime_earns_the_budget_back(
            self, tmp_path):
        """``max_restarts`` bounds crash *loops*, not total restarts
        over a long campaign: a worker killed twice — but healthy past
        ``min_uptime`` in between — must be forgiven both times, even
        with a budget of one."""
        spec = orchestrated_spec(replicates=8, instructions=2_000,
                                 name="crash-window")
        single = CampaignSession(spec).run()
        orchestrator = CampaignOrchestrator(
            spec, shards=2, store_dir=str(tmp_path),
            poll_interval=0.05, max_restarts=1, min_uptime=0.01,
            restart_backoff=RetryPolicy(attempts=1, base_delay=0.05,
                                        max_delay=0.1, jitter=0.0))
        kills = []

        @orchestrator.subscribe
        def assassin(event):
            # A shard-0 record landing proves the (re)launched worker
            # ran well past min_uptime before each kill.  Only strike
            # while the shard still has trials left, so every kill
            # forces a real relaunch (a kill after the final flush
            # just finishes the shard from its store).
            if len(kills) >= 2 or event.kind != TRIAL_FINISHED \
                    or event.shard != 0:
                return
            worker = orchestrator.workers[0]
            # One kill per launch: a poll batch can emit several
            # shard-0 records back-to-back, and a SIGKILL to an
            # already-dying pid would double-count as a second death.
            if worker.alive and not worker.finished \
                    and worker.pid not in kills \
                    and len(worker.store.load()) <= 10:
                try:
                    os.kill(worker.pid, signal.SIGKILL)
                except ProcessLookupError:
                    return
                kills.append(worker.pid)

        result = orchestrator.run()
        assert len(kills) == 2, "needed two kills of the same shard"
        assert orchestrator.total_restarts >= 2
        assert canonical(result.records) == canonical(single.records)


class TestHeartbeatLiveness:
    def test_sigstopped_worker_detected_and_recovered(self, tmp_path):
        """A SIGSTOPped worker is alive by every OS measure but makes
        no progress; only the heartbeat lease can tell.  The driver
        must declare it hung, SIGKILL it, and restart from its store
        with the merge still key-for-key identical."""
        spec = orchestrated_spec(replicates=8, instructions=2_000,
                                 name="stall-test")
        single = CampaignSession(spec).run()
        orchestrator = CampaignOrchestrator(
            spec, shards=2, store_dir=str(tmp_path),
            poll_interval=0.05, max_restarts=2, min_uptime=0.01,
            heartbeat_lease=1.0, heartbeat_interval=0.1,
            restart_backoff=RetryPolicy(attempts=1, base_delay=0.05,
                                        max_delay=0.1, jitter=0.0))
        stalled = []
        events = []
        orchestrator.subscribe(events.append)

        @orchestrator.subscribe
        def stopper(event):
            if stalled or event.kind != TRIAL_FINISHED:
                return
            for worker in orchestrator.workers:
                if worker.alive and not worker.finished:
                    try:
                        os.kill(worker.pid, signal.SIGSTOP)
                    except ProcessLookupError:
                        continue
                    stalled.append(worker.index)
                    return

        result = orchestrator.run()
        assert stalled, "no worker was alive to stall mid-campaign"
        assert orchestrator.total_hung >= 1
        assert any(event.kind == SHARD_HUNG for event in events)
        assert canonical(result.records) == canonical(single.records)


class TestCliMode:
    def test_cli_workers_match_single_session(self, tmp_path,
                                              single_session_result):
        orchestrator = CampaignOrchestrator(
            orchestrated_spec(), shards=2, store_dir=str(tmp_path),
            mode=CLI_MODE, poll_interval=0.05)
        result = orchestrator.run()
        assert canonical(result.records) \
            == canonical(single_session_result.records)
        # The worker command line and its output are kept for
        # post-mortems.
        assert os.path.exists(os.path.join(str(tmp_path),
                                           "shard-00.log"))


class TestMergedStorePreservation:
    def test_existing_merged_store_records_survive(self, tmp_path,
                                                   single_session_result):
        """A user-provided merged store holding unrelated records is
        appended to and compacted, never wiped (run() on a session
        would refuse such a store; the orchestrator must not silently
        destroy it either)."""
        from repro.campaign import JSONLStore
        merged = JSONLStore(str(tmp_path / "precious.jsonl"))
        foreign = {"key": "feedfacefeedface", "outcome": "masked",
                   "faults_injected": 0}
        merged.append(foreign)
        orchestrator = CampaignOrchestrator(
            orchestrated_spec(), shards=2,
            store_dir=str(tmp_path / "shards"), merged_store=merged,
            poll_interval=0.05)
        result = orchestrator.run()
        assert canonical(result.records) \
            == canonical(single_session_result.records)
        by_key = {r["key"]: r for r in merged.load()}
        assert by_key["feedfacefeedface"] == foreign
        assert len(by_key) == 17         # 16 campaign + 1 foreign


class TestAdaptiveOrchestration:
    def test_adaptive_shards_converge_early(self, tmp_path):
        from repro.harness.experiment import adaptive_demo_spec
        spec = adaptive_demo_spec(replicates=24,
                                  name="adaptive-orchestrated")
        options = ExecutionOptions(sampling=SamplingPlan.wilson(
            0.2, metric="sdc_rate", min_replicates=4))
        orchestrator = CampaignOrchestrator(
            spec, shards=2, store_dir=str(tmp_path), options=options,
            poll_interval=0.05)
        result = orchestrator.run()
        # Each shard stops its converged cells early, so the merged
        # record set is a strict subset of the grid...
        assert 0 < len(result.records) < spec.grid_size
        # ...and still aggregates per cell (fewer n, same cells).
        cells = aggregate(result.records)
        assert {(c.workload, c.model, c.rate_per_million)
                for c in cells} \
            == {(w, m, r) for w in spec.workloads
                for m in spec.models for r in spec.rates_per_million}
        # The driver reconstructs a merged-view adaptive summary from
        # the merged records: every cell accounted for, n matching the
        # merged sample, verdicts from the merged interval.
        from repro.campaign.adaptive import (CONVERGED, EXHAUSTED,
                                             SHARD_LOCAL)
        summary = result.adaptive
        assert summary is not None
        assert len(summary.cells) == len(cells)
        by_cell = {(c.workload, c.model, c.rate_per_million): c.n
                   for c in cells}
        for cell in summary.cells:
            assert cell["n"] == by_cell[(cell["workload"],
                                         cell["model"],
                                         cell["rate_per_million"])]
            assert cell["closed"] in (CONVERGED, EXHAUSTED,
                                      SHARD_LOCAL)
        assert summary.total_skipped \
            == spec.grid_size - len(result.records)
        # Both summaries in the CLI output must agree on "executed".
        assert summary.total_executed == result.executed

    def test_adaptive_rerun_counts_resumed_not_executed(self,
                                                        tmp_path):
        """Re-orchestrating over complete adaptive shard stores: the
        merged summary must report the prior records as resumed, not
        freshly executed, matching the campaign result's split."""
        from repro.harness.experiment import adaptive_demo_spec
        spec = adaptive_demo_spec(replicates=16,
                                  name="adaptive-rerun")
        options = ExecutionOptions(sampling=SamplingPlan.wilson(
            0.2, metric="sdc_rate", min_replicates=4))
        first = CampaignOrchestrator(
            spec, shards=2, store_dir=str(tmp_path), options=options,
            poll_interval=0.05).run()
        rerun = CampaignOrchestrator(
            spec, shards=2, store_dir=str(tmp_path), options=options,
            poll_interval=0.05).run()
        assert rerun.skipped == len(first.records)
        assert rerun.executed == rerun.adaptive.total_executed == 0


class TestShardWorkerEntry:
    def test_run_shard_runs_then_resumes(self, tmp_path):
        """The worker entry point used by process mode: fresh store ->
        run, populated store -> resume (the restart path)."""
        spec = orchestrated_spec(replicates=2)
        store_path = str(tmp_path / "worker.jsonl")
        _run_shard(spec.to_dict(), 0, 2, {}, store_path)
        from repro.campaign import JSONLStore
        first = JSONLStore(store_path).load()
        assert first
        # Second call must resume (a plain run() would refuse the
        # non-empty store) and add nothing.
        _run_shard(spec.to_dict(), 0, 2, {}, store_path)
        assert JSONLStore(store_path).load() == first
