"""Harness tests: experiment runners, report formatting, the CLI."""

import pytest

from repro.harness import experiment
from repro.harness.cli import build_parser, main
from repro.harness.report import (ascii_chart, format_figure5_table,
                                  format_figure6_table,
                                  format_machine_table,
                                  format_sensitivity_table)
from repro.models.presets import baseline_config, ss1, ss2
from repro.workloads.generator import build_workload

QUICK = 1_500  # instructions per quick simulation


class TestRunners:
    def test_run_on_model(self):
        result = experiment.run_on_model(build_workload("go"), ss1(),
                                         max_instructions=QUICK)
        assert result.model == "SS-1"
        assert result.instructions >= QUICK
        assert 0 < result.ipc <= 8

    def test_table2_rows(self):
        rows = experiment.table2_rows(benchmarks=("go",),
                                      instructions=QUICK)
        assert rows[0].name == "go"
        assert rows[0].pct_int > 50

    def test_figure5_rows(self):
        rows = experiment.figure5_rows(benchmarks=("go", "vortex"),
                                       instructions=QUICK)
        assert len(rows) == 2
        for row in rows:
            assert set(row.results) == {"SS-1", "Static-2", "SS-2"}
            assert 0.0 <= row.ss2_penalty < 1.0

    def test_figure6_points(self):
        points = experiment.figure6_points(
            benchmark="go", rates=(0.0, 5000.0), instructions=QUICK)
        assert len(points) == 2
        clean, faulty = points
        assert clean.results["R=2"].rewinds == 0
        assert faulty.results["R=2"].rewinds > 0

    def test_sensitivity_rows(self):
        rows = experiment.sensitivity_rows(benchmarks=("go",),
                                           instructions=QUICK,
                                           labels=("0.5x", "2x", "inf"))
        row = rows[0]
        assert set(row.fu_ipc) == {"0.5x", "2x", "inf"}
        assert row.base_ipc > 0

    def test_recovery_cost(self):
        result = experiment.recovery_cost(benchmark="go",
                                          rate_per_million=3000,
                                          instructions=QUICK)
        assert result.rewinds >= 1
        assert result.avg_recovery_penalty > 0

    def test_physreg_ablation(self):
        rows = experiment.physreg_ablation(benchmarks=("go",),
                                           instructions=QUICK)
        name, split_ipc, shared_ipc = rows[0]
        assert name == "go"
        assert shared_ipc <= split_ipc * 1.02

    def test_rename_scheme_comparison(self):
        results = experiment.rename_scheme_comparison(benchmark="go",
                                                      instructions=800)
        assert results["map"].cycles == results["associative"].cycles
        assert results["map"].ipc == results["associative"].ipc


class TestSensitivityCampaignSpec:
    def test_builds_override_axis_from_scalings(self):
        spec = experiment.sensitivity_campaign_spec(
            benchmarks=("go",), rates=(0.0,), replicates=1,
            instructions=400, labels=("2x",))
        assert set(spec.machine_overrides) == {"base", "fu-2x",
                                               "ruu-2x"}
        assert spec.machine_overrides["ruu-2x"]["rob_size"] == 256
        assert spec.machine_overrides["fu-2x"]["int_alu"] == 8
        assert spec.grid_size == 3

    def test_runs_through_the_session(self):
        from repro.campaign import CampaignSession
        spec = experiment.sensitivity_campaign_spec(
            benchmarks=("go",), rates=(0.0,), replicates=1,
            instructions=400, labels=("0.5x",))
        session = CampaignSession(spec)
        cells = {cell.machine: cell
                 for cell in (session.run() and session.aggregate())}
        assert set(cells) == {"base", "fu-0.5x", "ruu-0.5x"}
        # Halving the window cannot speed the machine up.
        assert cells["ruu-0.5x"].mean_ipc <= cells["base"].mean_ipc


class TestReportFormatting:
    def test_figure5_table(self):
        rows = experiment.figure5_rows(benchmarks=("go",),
                                       instructions=QUICK)
        table = format_figure5_table(rows)
        assert "go" in table and "average" in table

    def test_figure6_table(self):
        points = experiment.figure6_points(benchmark="go",
                                           rates=(0.0,),
                                           instructions=QUICK)
        table = format_figure6_table(points)
        assert "IPC R=2" in table

    def test_sensitivity_table(self):
        rows = experiment.sensitivity_rows(benchmarks=("go",),
                                           instructions=QUICK)
        table = format_sensitivity_table(rows)
        assert "limited" in table

    def test_machine_table_lists_table1(self):
        table = format_machine_table(baseline_config())
        assert "128/64" in table
        assert "4 IntALU" in table

    def test_ascii_chart_renders(self):
        chart = ascii_chart(
            [("a", "*", [(1e-6, 0.5), (1e-3, 0.4)]),
             ("b", "+", [(1e-6, 0.3), (1e-3, 0.3)])],
            width=20, height=5, title="demo")
        assert "demo" in chart and "*" in chart and "+" in chart

    def test_ascii_chart_empty(self):
        assert "(no data)" in ascii_chart([("a", "*", [])], title="t")


class TestCli:
    def test_parser_covers_all_commands(self):
        parser = build_parser()
        for command in ("table1", "table2", "figure3", "figure4",
                        "figure5", "figure6", "sensitivity", "coverage",
                        "demo"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_table1_runs(self, capsys):
        assert main(["table1"]) == 0
        assert "RUU/LSQ" in capsys.readouterr().out

    def test_figure3_runs(self, capsys):
        assert main(["figure3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out

    def test_coverage_runs(self, capsys):
        assert main(["coverage"]) == 0
        assert "sphere" in capsys.readouterr().out.lower()

    def test_figure5_quick(self, capsys):
        assert main(["figure5", "--benchmarks", "go",
                     "--instructions", "800"]) == 0
        assert "go" in capsys.readouterr().out

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestBenchCampaignAccounting:
    """The bench's internal bookkeeping: the per-phase wall-clock
    breakdown must actually account for the measured run, and the
    trial-cache counters it records must be internally consistent —
    the perf differ treats both as trustworthy inputs."""

    @pytest.fixture(scope="class")
    def payload(self):
        from repro.harness.bench import bench_campaign
        return bench_campaign(quick=True, repeats=2)

    def test_sample_lists_match_repeats(self, payload):
        assert payload["repeats"] == 2
        assert len(payload["optimized_sample_seconds"]) == 2
        assert len(payload["reference_sample_seconds"]) == 2
        for samples in \
                payload["optimized_phase_sample_seconds"].values():
            assert len(samples) == 2

    def test_headline_numbers_are_best_of_samples(self, payload):
        assert payload["optimized_seconds"] == pytest.approx(
            min(payload["optimized_sample_seconds"]), abs=1e-3)
        assert payload["reference_seconds"] == pytest.approx(
            min(payload["reference_sample_seconds"]), abs=1e-3)

    def test_phases_sum_to_optimized_seconds(self, payload):
        """Per repeat, the four phase timers must cover the bulk of
        the optimized wall time and never exceed it: the phase clock
        wraps the per-trial loop, so untimed work is only session
        setup and aggregation."""
        phases = payload["optimized_phase_sample_seconds"]
        assert set(phases) <= {"decode", "golden", "simulate",
                               "classify"}
        for repeat, total in \
                enumerate(payload["optimized_sample_seconds"]):
            covered = sum(samples[repeat]
                          for samples in phases.values())
            assert 0 < covered <= total + 0.02
            assert covered >= 0.5 * total

    def test_cache_stats_internally_consistent(self, payload):
        caches = payload["optimized_cache_stats"]
        assert set(caches) == {"golden_trace", "workload",
                               "checkpoints"}
        for name, stats in caches.items():
            for key in ("hits", "misses", "evictions", "size",
                        "limit"):
                assert stats[key] >= 0, (name, key)
            assert stats["hits"] + stats["misses"] \
                >= stats["evictions"], name
            assert stats["size"] <= stats["limit"], name
        # The quick grid re-simulates one workload at several rates:
        # the decoded-program cache must actually get hits.
        assert caches["workload"]["hits"] > 0
        assert caches["workload"]["size"] >= 1
