"""ServiceBackend: the fairness-gated execution engine.

The load-bearing property throughout: the service schedules, it never
changes results.  Every execution shape (trial-level gated pool,
adaptive plans, orchestrated shards) must produce records
byte-identical to a plain in-process CampaignSession run of the same
spec, and interruption at any point (cancel, drain, recovery) must
leave stores that a resumed run completes to the identical record set.
"""

import json
import time

import pytest

from repro.campaign import (CampaignSession, CampaignSpec,
                            ExecutionOptions, SamplingPlan, aggregate)
from repro.errors import QuotaError, ServiceError
from repro.service import (CANCELLED, DONE, INTERRUPTED, QUEUED,
                           RUNNING, ServiceBackend, TenantConfig)
from repro.service.jobs import Job


def spec(name="backend", replicates=2, rates=(0.0, 3000.0),
         instructions=300):
    return CampaignSpec(name=name, workloads=("gcc",),
                        models=("SS-1",), rates_per_million=rates,
                        replicates=replicates,
                        instructions=instructions)


def wait_terminal(backend, job_id, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        job = backend.job(job_id)
        if job.terminal:
            return job
        time.sleep(0.05)
    raise AssertionError("job %s stuck in state %r"
                         % (job_id, backend.job(job_id).state))


def records_of(backend, job_id):
    return backend.job_result(job_id, with_records=True)["records"]


@pytest.fixture
def backend(tmp_path):
    instance = ServiceBackend(str(tmp_path), slots=2)
    yield instance
    instance.close(drain_timeout=10.0)


class TestExecution:
    def test_records_byte_identical_to_plain_session(self, backend):
        job = backend.submit("alice", spec())
        assert wait_terminal(backend, job.id).state == DONE
        plain = CampaignSession(spec()).run()
        assert json.dumps(records_of(backend, job.id), sort_keys=True) \
            == json.dumps(plain.records, sort_keys=True)

    def test_adaptive_job_matches_plain_adaptive_session(self, backend):
        options = ExecutionOptions(sampling=SamplingPlan.wilson(
            0.5, min_replicates=2))
        job = backend.submit("alice", spec(replicates=6),
                             options=options)
        assert wait_terminal(backend, job.id).state == DONE
        plain = CampaignSession(spec(replicates=6),
                                options=options).run()
        assert {record["key"] for record in records_of(backend, job.id)} \
            == {record["key"] for record in plain.records}
        result = backend.job_result(job.id)
        assert "adaptive" in result
        assert result["adaptive"]["cells"]

    def test_event_stream_serializes_the_campaign_protocol(
            self, backend):
        job = backend.submit("alice", spec())
        wait_terminal(backend, job.id)
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            kinds = [event["kind"]
                     for _seq, event in backend.read_events(job.id)]
            if "job_finished" in kinds:
                break
            time.sleep(0.05)
        assert kinds[0] == "job_queued"
        assert "job_started" in kinds
        assert kinds.count("trial_finished") == 4
        assert "campaign_finished" in kinds
        assert kinds[-1] == "job_finished"

    def test_result_aggregate_matches_session_aggregate(self, backend):
        job = backend.submit("alice", spec())
        wait_terminal(backend, job.id)
        plain = CampaignSession(spec()).run()
        expected = [cell.as_dict() for cell in aggregate(plain.records)]
        assert backend.job_result(job.id)["cells"] == expected

    def test_orchestrated_job_matches_plain_session(self, backend):
        job = backend.submit("alice", spec(name="orch"), shards=2)
        assert wait_terminal(backend, job.id).state == DONE
        plain = CampaignSession(spec(name="orch")).run()
        assert json.dumps(records_of(backend, job.id), sort_keys=True) \
            == json.dumps(plain.records, sort_keys=True)
        kinds = {event["kind"]
                 for _seq, event in backend.read_events(job.id)}
        assert "shard_started" in kinds

    def test_orchestrated_shards_over_slots_rejected(self, backend):
        with pytest.raises(ServiceError, match="slots"):
            backend.submit("alice", spec(), shards=5)


class TestAdmission:
    def test_submit_validates_tenant_and_spec(self, backend):
        with pytest.raises(ServiceError, match="tenant"):
            backend.submit("", spec())
        with pytest.raises(ServiceError, match="spec"):
            backend.submit("alice", "not-a-spec")

    def test_submit_accepts_wire_dicts(self, backend):
        job = backend.submit("alice", spec().to_dict(),
                             options={"workers": 1})
        assert wait_terminal(backend, job.id).state == DONE

    def test_quota_enforced(self, tmp_path):
        backend = ServiceBackend(
            str(tmp_path / "q"), slots=1,
            tenants=[TenantConfig("alice", max_queued=1,
                                  max_running=1)])
        try:
            first = backend.submit("alice", spec(name="q1"))
            deadline = time.monotonic() + 30
            while backend.job(first.id).state == QUEUED:
                assert time.monotonic() < deadline
                time.sleep(0.02)
            backend.submit("alice", spec(name="q2"))
            with pytest.raises(QuotaError):
                backend.submit("alice", spec(name="q3"))
        finally:
            backend.close(drain_timeout=10.0)

    def test_poll_interval_defaults_to_the_service_interval(
            self, backend):
        job = backend.submit("alice", spec())
        assert job.options.poll_interval == backend.poll_interval
        explicit = backend.submit(
            "alice", spec(name="explicit"),
            options=ExecutionOptions(poll_interval=0.42))
        assert explicit.options.poll_interval == 0.42


class TestCancellation:
    def test_cancel_queued_job(self, tmp_path):
        backend = ServiceBackend(
            str(tmp_path / "c"), slots=1,
            tenants=[TenantConfig("alice", max_running=1)])
        try:
            first = backend.submit("alice", spec(name="c1",
                                                 replicates=4))
            second = backend.submit("alice", spec(name="c2"))
            cancelled = backend.cancel(second.id)
            assert cancelled.state == CANCELLED
            assert wait_terminal(backend, first.id).state == DONE
            assert backend.job(second.id).state == CANCELLED
        finally:
            backend.close(drain_timeout=10.0)

    def test_cancel_running_job_keeps_completed_records(self, backend):
        big = spec(name="cancelme", replicates=30,
                   instructions=1_500)
        job = backend.submit("alice", big)
        deadline = time.monotonic() + 60
        while backend.job(job.id).done < 2:
            assert time.monotonic() < deadline
            time.sleep(0.02)
        backend.cancel(job.id)
        final = wait_terminal(backend, job.id)
        assert final.state == CANCELLED
        store = job.store(backend.data_dir)
        completed = store.completed_keys()
        assert completed                      # progress survived
        assert len(completed) < big.grid_size  # but it really stopped
        kinds = [event["kind"]
                 for _seq, event in backend.read_events(job.id)]
        assert "job_cancelled" in kinds

    def test_cancel_terminal_job_is_a_noop(self, backend):
        job = backend.submit("alice", spec())
        wait_terminal(backend, job.id)
        assert backend.cancel(job.id).state == DONE


class TestDrainAndRecovery:
    def test_drain_interrupts_and_recovery_resumes_identically(
            self, tmp_path):
        data_dir = str(tmp_path / "svc")
        big = spec(name="drainme", replicates=24, instructions=1_500)
        backend = ServiceBackend(data_dir, slots=2)
        job = backend.submit("alice", big)
        deadline = time.monotonic() + 60
        while backend.job(job.id).done < 2:
            assert time.monotonic() < deadline
            time.sleep(0.02)
        assert backend.drain(timeout=30.0)
        interrupted = backend.job(job.id)
        assert interrupted.state == INTERRUPTED
        partial = len(job.store(data_dir).completed_keys())
        assert 0 < partial < big.grid_size
        with pytest.raises(ServiceError, match="draining"):
            backend.submit("alice", spec(name="late"))
        backend.close(drain_timeout=5.0)

        # A new service process adopts the interrupted job, resumes it
        # from the store, and completes to the identical record set.
        revived = ServiceBackend(data_dir, slots=2)
        try:
            recovered = revived.recover()
            assert [job_.id for job_ in recovered] == [job.id]
            final = wait_terminal(revived, job.id)
            assert final.state == DONE
            plain = CampaignSession(big).run()
            assert json.dumps(records_of(revived, job.id),
                              sort_keys=True) \
                == json.dumps(plain.records, sort_keys=True)
            kinds = [event["kind"]
                     for _seq, event in revived.read_events(job.id)]
            assert "job_interrupted" in kinds
            assert "job_resumed" in kinds
        finally:
            revived.close(drain_timeout=10.0)

    def test_drain_catches_job_claimed_but_not_yet_registered(
            self, tmp_path):
        """The admission race: ``next_runnable`` marks a job RUNNING
        before its runner registers.  A drain landing inside that
        window must keep sweeping until the runner shows up and is
        stopped — not return with the job silently still running."""
        backend = ServiceBackend(str(tmp_path / "svc"), slots=2,
                                 poll_interval=0.02)
        try:
            claim = backend.queue.next_runnable

            def slow_claim():
                job = claim()
                if job is not None:
                    time.sleep(0.4)   # stretch the claim→register gap
                return job

            backend.queue.next_runnable = slow_claim
            job = backend.submit("alice", spec(name="racer",
                                               replicates=8))
            # Give admission time to claim the job (state RUNNING) but
            # land the drain well inside the registration stall.
            deadline = time.monotonic() + 10
            while backend.job(job.id).state == QUEUED:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            assert backend.drain(timeout=30.0)
            assert backend.job(job.id).state != RUNNING
        finally:
            backend.close(drain_timeout=10.0)

    def test_recover_preserves_terminal_jobs_without_requeue(
            self, tmp_path):
        data_dir = str(tmp_path / "svc")
        backend = ServiceBackend(data_dir, slots=2)
        job = backend.submit("alice", spec())
        wait_terminal(backend, job.id)
        backend.close(drain_timeout=10.0)
        revived = ServiceBackend(data_dir, slots=2)
        try:
            assert revived.recover() == []
            assert revived.job(job.id).state == DONE
        finally:
            revived.close(drain_timeout=5.0)


class TestFairnessAccounting:
    def test_concurrent_tenants_both_execute_and_report(self, backend):
        jobs = [backend.submit("alice", spec(name="fa", replicates=4)),
                backend.submit("bob", spec(name="fb", replicates=4))]
        for job in jobs:
            assert wait_terminal(backend, job.id).state == DONE
        report = backend.fairness_report()
        for tenant in ("alice", "bob"):
            entry = report["tenants"][tenant]
            assert entry["trials_executed"] == 8
            assert entry["jobs"] == {"done": 1}
            assert entry["busy_seconds"] > 0
        assert report["slots"] == 2
        assert report["draining"] is False
