"""Property-based tests: out-of-order execution is architecturally
invisible, for any program and any machine shape, at any redundancy.

Programs are generated from a terminating template (random register
initialisation, a bounded loop of random straight-line operations, a
random tail), covering integer/FP arithmetic, loads, stores and the
loop-closing branch.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import DUAL_REDUNDANT, TRIPLE_REWIND
from repro.functional.checker import compare_states
from repro.functional.simulator import run_functional
from repro.isa.builder import ProgramBuilder
from repro.isa.opcodes import Op
from repro.isa.registers import fp_reg
from repro.uarch.config import MachineConfig
from repro.uarch.processor import simulate

_INT_RR = (Op.ADD, Op.SUB, Op.XOR, Op.AND, Op.OR, Op.SLT, Op.MUL,
           Op.DIV)
_INT_RI = (Op.ADDI, Op.XORI, Op.ANDI, Op.ORI, Op.SLTI)
_FP_RR = (Op.FADD, Op.FSUB, Op.FMUL, Op.FDIV)

_INT_REGS = tuple(range(1, 8))
_FP_REGS = tuple(fp_reg(i) for i in range(1, 5))


@st.composite
def _body_op(draw):
    """One random, always-safe body instruction."""
    choice = draw(st.integers(min_value=0, max_value=5))
    if choice == 0:
        op = draw(st.sampled_from(_INT_RR))
        return ("rr", op, draw(st.sampled_from(_INT_REGS)),
                draw(st.sampled_from(_INT_REGS)),
                draw(st.sampled_from(_INT_REGS)))
    if choice == 1:
        op = draw(st.sampled_from(_INT_RI))
        return ("ri", op, draw(st.sampled_from(_INT_REGS)),
                draw(st.sampled_from(_INT_REGS)),
                draw(st.integers(min_value=-64, max_value=64)))
    if choice == 2:
        op = draw(st.sampled_from(_FP_RR))
        return ("fp", op, draw(st.sampled_from(_FP_REGS)),
                draw(st.sampled_from(_FP_REGS)),
                draw(st.sampled_from(_FP_REGS)))
    if choice == 3:
        return ("load", Op.LW, draw(st.sampled_from(_INT_REGS)),
                draw(st.integers(min_value=0, max_value=31)), None)
    if choice == 4:
        return ("store", Op.SW, draw(st.sampled_from(_INT_REGS)),
                draw(st.integers(min_value=0, max_value=31)), None)
    return ("cvt", Op.CVTIF, draw(st.sampled_from(_FP_REGS)),
            draw(st.sampled_from(_INT_REGS)), None)


@st.composite
def programs(draw):
    """A random, always-terminating program."""
    builder = ProgramBuilder("random")
    builder.word(*[draw(st.integers(min_value=-100, max_value=100))
                   for _ in range(32)])
    for reg in _INT_REGS:
        builder.emit(Op.ADDI, rd=reg, rs1=0,
                     imm=draw(st.integers(min_value=-50, max_value=50)))
    for reg in _FP_REGS:
        builder.emit(Op.CVTIF, rd=reg, rs1=draw(
            st.sampled_from(_INT_REGS)))
    body = draw(st.lists(_body_op(), min_size=3, max_size=20))
    iterations = draw(st.integers(min_value=1, max_value=5))
    builder.emit(Op.ADDI, rd=9, rs1=0, imm=iterations)
    builder.label("loop")
    for kind, op, a, b, c in body:
        if kind == "rr":
            builder.emit(op, rd=a, rs1=b, rs2=c)
        elif kind == "ri":
            builder.emit(op, rd=a, rs1=b, imm=c)
        elif kind == "fp":
            builder.emit(op, rd=a, rs1=b, rs2=c)
        elif kind == "load":
            builder.emit(Op.LW, rd=a, rs1=0, imm=b)
        elif kind == "store":
            builder.emit(Op.SW, rs1=0, rs2=a, imm=b)
        else:
            builder.emit(Op.CVTIF, rd=a, rs1=b)
    builder.emit(Op.ADDI, rd=9, rs1=9, imm=-1)
    builder.branch(Op.BNE, rs1=9, rs2=0, target="loop")
    builder.halt()
    return builder.build()


@st.composite
def machine_shapes(draw):
    """Random but valid machine configurations (even ROB for R=2)."""
    rob = draw(st.sampled_from([8, 16, 32, 64, 128]))
    return MachineConfig(
        fetch_width=draw(st.sampled_from([1, 2, 4, 8])),
        dispatch_width=draw(st.sampled_from([2, 4, 8])),
        issue_width=draw(st.sampled_from([2, 4, 8])),
        commit_width=draw(st.sampled_from([2, 4, 8])),
        rob_size=rob,
        lsq_size=max(4, rob // 2),
        int_alu=draw(st.sampled_from([1, 2, 4])),
        int_mult=draw(st.sampled_from([1, 2])),
        fp_add=draw(st.sampled_from([1, 2])),
        fp_mult=1,
        mem_ports=draw(st.sampled_from([1, 2])),
        ifq_size=draw(st.sampled_from([2, 8, 16])))


_SETTINGS = settings(max_examples=25, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


@_SETTINGS
@given(programs())
def test_baseline_equivalence(program):
    golden = run_functional(program, max_instructions=200_000)
    processor = simulate(program, lockstep=True, max_cycles=400_000)
    assert processor.halted
    assert compare_states(processor.arch, golden.state).clean


@_SETTINGS
@given(programs())
def test_dual_redundant_equivalence(program):
    golden = run_functional(program, max_instructions=200_000)
    processor = simulate(program, ft=DUAL_REDUNDANT, lockstep=True,
                         max_cycles=400_000)
    assert processor.halted
    assert compare_states(processor.arch, golden.state).clean


@_SETTINGS
@given(programs(), machine_shapes())
def test_equivalence_across_machine_shapes(program, config):
    golden = run_functional(program, max_instructions=200_000)
    processor = simulate(program, config=config, lockstep=True,
                         max_cycles=600_000)
    assert processor.halted
    assert compare_states(processor.arch, golden.state).clean


@_SETTINGS
@given(programs(), st.integers(min_value=0, max_value=2 ** 32 - 1))
def test_redundant_equivalence_under_faults(program, seed):
    """Detection + rewind keeps any random program correct.

    The rate is kept within the single-event-upset regime (the design's
    coverage contract): at vastly higher rates both copies of one
    conditional branch can be struck and agree on the one wrong outcome
    — see TestCoverageLimits in test_fault_tolerance.py.
    """
    from repro.core.faults import FaultConfig
    golden = run_functional(program, max_instructions=200_000)
    processor = simulate(
        program, ft=DUAL_REDUNDANT,
        fault_config=FaultConfig(rate_per_million=2000, seed=seed),
        lockstep=True, max_cycles=600_000)
    assert processor.halted
    assert compare_states(processor.arch, golden.state).clean


@_SETTINGS
@given(programs())
def test_triple_redundant_equivalence(program):
    golden = run_functional(program, max_instructions=200_000)
    processor = simulate(program, config=MachineConfig(rob_size=126),
                         ft=TRIPLE_REWIND, lockstep=True,
                         max_cycles=600_000)
    assert processor.halted
    assert compare_states(processor.arch, golden.state).clean
