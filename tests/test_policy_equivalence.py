"""Legacy-path compatibility of the fault-site refactor.

``tests/data/golden_spec64.json`` holds the 64-trial acceptance grid —
records and aggregate JSON — exactly as the pre-refactor
``run_campaign`` path produced them.  Every rate-based execution route
through the new policy subsystem (serial session, ``workers=2`` pool,
SQLite-store resume, the deprecated ``run_campaign`` wrapper) must
reproduce that fixture byte-for-byte: the ``RatePolicy`` indirection
may cost nothing in trial keys, records or aggregates.
"""

import json
import os

import pytest

from repro.campaign import (CampaignSession, CampaignSpec,
                            ExecutionOptions, cells_to_json,
                            clear_result_caches, open_store,
                            run_campaign)

FIXTURE = os.path.join(os.path.dirname(__file__), "data",
                       "golden_spec64.json")


@pytest.fixture(scope="module")
def golden():
    with open(FIXTURE) as handle:
        payload = json.load(handle)
    payload["records_json"] = json.dumps(payload["records"],
                                         sort_keys=True)
    return payload


@pytest.fixture(scope="module")
def spec(golden):
    return CampaignSpec.from_dict(golden["spec"])


def canonical(records):
    return json.dumps(records, sort_keys=True)


def test_trial_keys_are_unchanged(golden, spec):
    """The content hashes themselves: any key drift would silently
    orphan every stored campaign on resume."""
    expected = [record["key"] for record in golden["records"]]
    assert [trial.key for trial in spec.trials()] == expected


def test_serial_records_byte_identical(golden, spec):
    session = CampaignSession(spec)
    result = session.run()
    assert canonical(result.records) == golden["records_json"]
    assert cells_to_json(session.aggregate()) == golden["cells_json"]


def test_worker_pool_records_byte_identical(golden, spec):
    session = CampaignSession(spec,
                              options=ExecutionOptions(workers=2))
    result = session.run()
    assert canonical(result.records) == golden["records_json"]
    assert cells_to_json(session.aggregate()) == golden["cells_json"]


def test_sqlite_resume_byte_identical(golden, spec, tmp_path):
    """A killed-and-resumed campaign against a SQLite store must also
    land on the fixture: the store holds a prefix of the records, the
    resumed session completes the rest."""
    store = open_store("sqlite:%s" % (tmp_path / "resume.db"))
    for record in golden["records"][:23]:
        store.append(record)
    session = CampaignSession(spec, store=store)
    result = session.resume()
    assert result.skipped == 23
    assert result.executed == 41
    assert canonical(result.records) == golden["records_json"]
    assert cells_to_json(session.aggregate()) == golden["cells_json"]


def test_deprecated_run_campaign_byte_identical(golden, spec):
    with pytest.warns(DeprecationWarning):
        result = run_campaign(spec)
    assert canonical(result.records) == golden["records_json"]


def test_fresh_caches_do_not_change_records(golden, spec):
    """The fixture must not depend on warm per-process memos."""
    clear_result_caches()
    result = CampaignSession(spec).run()
    assert canonical(result.records) == golden["records_json"]
