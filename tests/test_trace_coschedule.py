"""Pipeline tracer and Section-3.5 co-scheduling tests."""

import pytest

from repro.core.config import DUAL_REDUNDANT
from repro.core.faults import FaultConfig
from repro.functional.checker import compare_states
from repro.uarch.config import MachineConfig
from repro.uarch.processor import Processor, simulate
from repro.uarch.trace import PipelineTracer
from repro.workloads.microbench import fibonacci, vector_sum


def _traced_run(program, ft=None, config=None, fault_config=None):
    processor = Processor(program, config=config, ft=ft,
                          fault_config=fault_config)
    tracer = PipelineTracer()
    processor.attach_tracer(tracer)
    processor.run()
    return processor, tracer


class TestTracer:
    def test_records_every_commit(self):
        processor, tracer = _traced_run(fibonacci(n=16))
        assert len(tracer.records) == processor.stats.instructions

    def test_lifecycle_monotonicity(self):
        _, tracer = _traced_run(fibonacci(n=16))
        for record in tracer.records:
            assert record.fetch_cycle <= record.dispatch_cycle
            for issue, done in zip(record.issue_cycles,
                                   record.done_cycles):
                if issue is not None:
                    assert record.dispatch_cycle < issue
                    assert issue < done
                if done is not None:  # nop/halt complete at dispatch
                    assert done <= record.commit_cycle
            assert record.latency >= 2

    def test_commit_order_is_program_order(self):
        _, tracer = _traced_run(vector_sum(length=32))
        gseqs = [record.gseq for record in tracer.records]
        assert gseqs == sorted(gseqs)

    def test_r2_records_two_copies(self):
        _, tracer = _traced_run(fibonacci(n=16), ft=DUAL_REDUNDANT)
        for record in tracer.records:
            assert len(record.issue_cycles) == 2
            assert len(record.done_cycles) == 2

    def test_rewinds_recorded(self):
        _, tracer = _traced_run(
            vector_sum(length=256), ft=DUAL_REDUNDANT,
            fault_config=FaultConfig(rate_per_million=3000, seed=4))
        assert tracer.rewinds
        assert all(r.restart_pc >= 0 for r in tracer.rewinds)

    def test_limit_caps_records(self):
        processor = Processor(fibonacci(n=64))
        tracer = PipelineTracer(limit=10)
        processor.attach_tracer(tracer)
        processor.run()
        assert len(tracer.records) == 10

    def test_format_table(self):
        _, tracer = _traced_run(fibonacci(n=12))
        table = tracer.format_table(last=5)
        assert "instruction" in table
        assert "fib" not in table  # renders instructions, not names
        assert len(table.splitlines()) >= 6

    def test_empty_table(self):
        assert "(no trace records)" in PipelineTracer().format_table()

    def test_average_commit_latency(self):
        _, tracer = _traced_run(fibonacci(n=16))
        assert tracer.average_commit_latency() > 0


class TestCoScheduling:
    def _unit_pairs(self, co_schedule):
        """FU unit indices used by the two copies of each mult group."""
        from repro.isa.builder import ProgramBuilder
        from repro.isa.opcodes import Op
        builder = ProgramBuilder("mults")
        builder.emit(Op.ADDI, rd=1, rs1=0, imm=3)
        builder.emit(Op.ADDI, rd=9, rs1=0, imm=200)
        builder.label("loop")
        for chain in (2, 3):
            builder.emit(Op.MUL, rd=chain, rs1=1, rs2=1)
        builder.emit(Op.ADDI, rd=9, rs1=9, imm=-1)
        builder.branch(Op.BNE, rs1=9, rs2=0, target="loop")
        builder.halt()
        program = builder.build()
        config = MachineConfig(co_schedule_copies=co_schedule)
        processor = Processor(program, config=config, ft=DUAL_REDUNDANT)
        tracer = PipelineTracer()
        processor.attach_tracer(tracer)
        processor.run()
        return [record.fu_units for record in tracer.records
                if "mul" in record.text]

    def test_copies_prefer_distinct_units(self):
        pairs = self._unit_pairs(co_schedule=True)
        distinct = sum(1 for a, b in pairs
                       if a is not None and b is not None and a != b)
        assert distinct >= 0.8 * len(pairs)

    def test_steering_never_reduces_distinct_pairs(self):
        # Same-cycle sibling issues split units naturally (each unit
        # accepts one op per cycle); steering can only help further.
        steered = self._unit_pairs(co_schedule=True)
        unsteered = self._unit_pairs(co_schedule=False)
        distinct_on = sum(1 for a, b in steered if a != b)
        distinct_off = sum(1 for a, b in unsteered if a != b)
        assert distinct_on >= distinct_off

    def test_co_scheduling_preserves_correctness(self):
        program = vector_sum(length=64)
        on = simulate(program, ft=DUAL_REDUNDANT,
                      config=MachineConfig(co_schedule_copies=True))
        off = simulate(program, ft=DUAL_REDUNDANT,
                       config=MachineConfig(co_schedule_copies=False))
        assert compare_states(on.arch, off.arch).clean

    def test_co_scheduling_is_nearly_free(self):
        program = vector_sum(length=256)
        on = simulate(program, ft=DUAL_REDUNDANT,
                      config=MachineConfig(co_schedule_copies=True))
        off = simulate(program, ft=DUAL_REDUNDANT,
                       config=MachineConfig(co_schedule_copies=False))
        assert on.stats.cycles == pytest.approx(off.stats.cycles,
                                                rel=0.05)
