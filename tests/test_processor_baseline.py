"""Baseline (R=1) out-of-order engine tests against the golden model."""

import pytest

from repro.core.config import UNPROTECTED
from repro.errors import ConfigError
from repro.functional.checker import compare_states
from repro.functional.simulator import run_functional
from repro.isa.assembler import assemble
from repro.uarch.config import MachineConfig
from repro.uarch.processor import Processor, simulate
from repro.workloads.microbench import (branch_pattern, dot_product,
                                        fibonacci, pointer_chase,
                                        vector_sum)

MICROBENCHES = [vector_sum(length=48), fibonacci(n=24),
                dot_product(length=24), pointer_chase(length=96),
                branch_pattern(iterations=200, period=3)]


@pytest.mark.parametrize("program", MICROBENCHES,
                         ids=lambda p: p.name)
def test_matches_golden_model(program):
    golden = run_functional(program)
    processor = simulate(program, lockstep=True)
    assert processor.halted
    assert compare_states(processor.arch, golden.state).clean


@pytest.mark.parametrize("program", MICROBENCHES,
                         ids=lambda p: p.name)
def test_instruction_count_matches_golden(program):
    golden = run_functional(program)
    processor = simulate(program)
    assert processor.stats.instructions == golden.instret


class TestTimingSanity:
    def test_ipc_bounded_by_width(self):
        processor = simulate(vector_sum(length=64))
        assert 0 < processor.stats.ipc <= processor.config.commit_width

    def test_serial_chain_is_slow(self):
        # A pointer chase cannot run faster than the L1 hit path allows.
        chase = simulate(pointer_chase(length=128))
        parallel = simulate(vector_sum(length=128))
        assert chase.stats.ipc < parallel.stats.ipc

    def test_predictor_learns_loop_branch(self):
        processor = simulate(fibonacci(n=200))
        assert processor.stats.branch_accuracy > 0.9

    def test_cycles_grow_with_work(self):
        small = simulate(vector_sum(length=16))
        large = simulate(vector_sum(length=256))
        assert large.stats.cycles > small.stats.cycles

    def test_stores_counted(self):
        processor = simulate(vector_sum(length=8))
        assert processor.stats.stores_committed == 1

    def test_max_cycles_cuts_run(self):
        processor = Processor(vector_sum(length=256))
        processor.run(max_cycles=10)
        assert not processor.halted
        assert processor.cycle == 10

    def test_max_instructions_cuts_run(self):
        processor = Processor(vector_sum(length=256))
        stats = processor.run(max_instructions=50)
        assert not processor.halted
        assert 50 <= stats.instructions <= 60


class TestStructuralLimits:
    def test_tiny_rob_still_correct(self):
        program = vector_sum(length=32)
        golden = run_functional(program)
        config = MachineConfig(rob_size=8, lsq_size=4, ifq_size=2)
        processor = simulate(program, config=config, lockstep=True)
        assert compare_states(processor.arch, golden.state).clean

    def test_tiny_rob_is_slower(self):
        program = vector_sum(length=64)
        big = simulate(program)
        small = simulate(program, config=MachineConfig(rob_size=8,
                                                       lsq_size=4))
        assert small.stats.cycles > big.stats.cycles

    def test_single_issue_machine(self):
        program = fibonacci(n=16)
        golden = run_functional(program)
        config = MachineConfig(fetch_width=1, dispatch_width=1,
                               issue_width=1, commit_width=1,
                               int_alu=1, mem_ports=1)
        processor = simulate(program, config=config, lockstep=True)
        assert compare_states(processor.arch, golden.state).clean
        assert processor.stats.ipc <= 1.0

    def test_fewer_ports_slower_on_memory_code(self):
        program = vector_sum(length=256)
        two = simulate(program)
        one = simulate(program, config=MachineConfig(mem_ports=1))
        assert one.stats.cycles >= two.stats.cycles

    def test_rob_must_be_multiple_of_redundancy(self):
        from repro.core.config import TRIPLE_MAJORITY
        with pytest.raises(ConfigError):
            Processor(fibonacci(n=8), config=MachineConfig(rob_size=128),
                      ft=TRIPLE_MAJORITY)


class TestRenameSchemes:
    @pytest.mark.parametrize("program", MICROBENCHES,
                             ids=lambda p: p.name)
    def test_associative_renamer_equivalent(self, program):
        map_run = simulate(program,
                           config=MachineConfig(rename_scheme="map"))
        assoc_run = simulate(
            program, config=MachineConfig(rename_scheme="associative"))
        assert compare_states(map_run.arch, assoc_run.arch).clean
        assert map_run.stats.cycles == assoc_run.stats.cycles
        assert map_run.stats.instructions == assoc_run.stats.instructions


class TestUnprotectedMode:
    def test_default_ft_is_unprotected(self):
        processor = Processor(fibonacci(n=8))
        assert processor.ft is UNPROTECTED
        assert processor.redundancy == 1

    def test_no_checks_run_without_redundancy(self):
        processor = simulate(fibonacci(n=32))
        assert processor.checker.checks == 0
        assert processor.stats.rewinds == 0
