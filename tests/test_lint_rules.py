"""Per-rule fixtures for the ``repro.lint`` analyzer.

Each rule gets at least one firing (positive) and one non-firing
(negative) fixture, built as tiny source trees under ``tmp_path`` that
mimic the ``repro/...`` layout the scope rules key on.  Suppression
and baseline semantics are covered at the end.
"""

import json
import os
import textwrap

import pytest

from repro.errors import ConfigError
from repro.lint import (DEFAULT_ROOT, parse_suppressions, run_lint,
                        select_rules, write_baseline)
from repro.lint.oracle import REFERENCE_PATH, fingerprint, freeze

NO_BASELINE = "does-not-exist.json"


def make_tree(tmp_path, files):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return str(tmp_path)


def lint(tmp_path, files, rules=None):
    root = make_tree(tmp_path, files)
    return run_lint(root=root, rule_names=rules,
                    baseline_path=os.path.join(root, NO_BASELINE))


def rules_fired(report):
    return sorted({f.rule for f in report.findings})


# -- determinism -----------------------------------------------------------

class TestDeterminismRule:
    def test_hazards_in_core_fire(self, tmp_path):
        report = lint(tmp_path, {"repro/faults/inject.py": """\
            import json
            import random
            import time

            def hazards(log):
                stamp = time.time()
                draw = random.random()
                rng = random.Random()
                key = {id(log): stamp}
                for item in {1, 2, 3}:
                    draw += item
                return json.dumps({"stamp": stamp})
            """}, rules=["determinism"])
        messages = " | ".join(f.message for f in report.findings)
        assert len(report.findings) == 6
        assert "time.time" in messages
        assert "global unseeded RNG" in messages
        assert "without a seed" in messages
        assert "id(...)" in messages
        assert "iteration over a set" in messages
        assert "sort_keys" in messages

    def test_service_layer_is_out_of_scope(self, tmp_path):
        report = lint(tmp_path, {"repro/service/lease.py": """\
            import time

            def now():
                return time.time()
            """}, rules=["determinism"])
        assert report.findings == []

    def test_clean_core_passes(self, tmp_path):
        report = lint(tmp_path, {"repro/faults/inject.py": """\
            import json
            import random

            def draws(seed, sites):
                rng = random.Random(seed)
                order = sorted({site for site in sites})
                return json.dumps({"order": order}, sort_keys=True), rng
            """}, rules=["determinism"])
        assert report.findings == []


# -- frozen-oracle ---------------------------------------------------------

def reference_source():
    with open(os.path.join(DEFAULT_ROOT, REFERENCE_PATH)) as handle:
        return handle.read()


class TestFrozenOracleRule:
    def test_pristine_reference_passes(self, tmp_path):
        report = lint(tmp_path,
                      {REFERENCE_PATH: reference_source()},
                      rules=["frozen-oracle"])
        assert report.findings == []

    def test_edited_reference_fires(self, tmp_path):
        mutated = reference_source() + "\n\nX_DRIFT = 1\n"
        report = lint(tmp_path, {REFERENCE_PATH: mutated},
                      rules=["frozen-oracle"])
        assert len(report.findings) == 1
        assert "fingerprint" in report.findings[0].message

    def test_comment_only_change_passes(self, tmp_path):
        commented = reference_source() + "\n# a trailing comment\n"
        report = lint(tmp_path, {REFERENCE_PATH: commented},
                      rules=["frozen-oracle"])
        assert report.findings == []

    def test_unsanctioned_import_fires(self, tmp_path):
        report = lint(tmp_path, {
            "repro/faults/sneaky.py":
                "from repro.uarch.reference import ReferenceProcessor\n",
            "repro/campaign/outcome.py":
                "from ..uarch import reference\n",
        }, rules=["frozen-oracle"])
        assert [f.path for f in report.findings] \
            == ["repro/faults/sneaky.py"]

    def test_fingerprint_is_ast_based(self):
        assert fingerprint("x = 1\n") == fingerprint("x  =  1  # c\n")
        assert fingerprint("x = 1\n") != fingerprint("x = 2\n")

    def test_freeze_roundtrip(self, tmp_path):
        path = str(tmp_path / "fp.json")
        record = freeze("x = 1\n", path)
        with open(path) as handle:
            assert json.load(handle) == record
        assert record["sha256"] == fingerprint("x = 1\n")


# -- wire-parity -----------------------------------------------------------

class TestWireParityRule:
    def test_missing_from_dict_fires(self, tmp_path):
        report = lint(tmp_path, {"repro/campaign/record.py": """\
            class Record:
                def to_dict(self):
                    return {"key": self.key}
            """}, rules=["wire-parity"])
        assert len(report.findings) == 1
        assert "no from_dict" in report.findings[0].message

    def test_unparsed_key_fires(self, tmp_path):
        report = lint(tmp_path, {"repro/campaign/record.py": """\
            class Record:
                def to_dict(self):
                    data = {"key": self.key}
                    data["extra"] = self.extra
                    return data

                @classmethod
                def from_dict(cls, data):
                    return cls(key=data["key"])
            """}, rules=["wire-parity"])
        assert len(report.findings) == 1
        assert "'extra'" in report.findings[0].message

    def test_dataclass_field_expansion_passes(self, tmp_path):
        report = lint(tmp_path, {"repro/campaign/record.py": """\
            from dataclasses import dataclass

            @dataclass
            class Record:
                key: str = ""
                extra: int = 0

                def to_dict(self):
                    return {"key": self.key, "extra": self.extra}

                @classmethod
                def from_dict(cls, data):
                    fields = set(cls.__dataclass_fields__)
                    return cls(**{k: v for k, v in data.items()
                                  if k in fields})
            """}, rules=["wire-parity"])
        assert report.findings == []

    def test_unregistered_event_kind_fires(self, tmp_path):
        report = lint(tmp_path, {
            "repro/service/events.py": """\
                JOB_QUEUED = "job_queued"
                JOB_EVENT_KINDS = (JOB_QUEUED,)

                def job_event(kind, job):
                    return {"kind": kind}
            """,
            "repro/service/backend.py": """\
                from .events import job_event

                def enqueue(job):
                    return job_event("job_queued", job)

                def rogue(job):
                    return job_event("job_vanished", job)
            """}, rules=["wire-parity"])
        assert len(report.findings) == 1
        assert "'job_vanished'" in report.findings[0].message
        assert report.findings[0].path == "repro/service/backend.py"

    def test_unemitted_registered_kind_fires(self, tmp_path):
        report = lint(tmp_path, {
            "repro/service/events.py": """\
                JOB_QUEUED = "job_queued"
                JOB_GHOST = "job_ghost"
                JOB_EVENT_KINDS = (JOB_QUEUED, JOB_GHOST)

                def job_event(kind, job):
                    return {"kind": kind}

                def enqueue(job):
                    return job_event(JOB_QUEUED, job)
            """}, rules=["wire-parity"])
        assert len(report.findings) == 1
        assert "'job_ghost'" in report.findings[0].message

    def test_kind_comparisons_must_be_registered(self, tmp_path):
        report = lint(tmp_path, {
            "repro/service/events.py": """\
                JOB_EVENT_KINDS = ("job_queued",)

                def job_event(kind, job):
                    return {"kind": kind}

                def enqueue(job):
                    return job_event("job_queued", job)
            """,
            "repro/service/watch.py": """\
                def is_stale(event):
                    return event.kind == "job_stale"
            """}, rules=["wire-parity"])
        assert len(report.findings) == 1
        assert "'job_stale'" in report.findings[0].message

    def test_registries_absent_skips_kind_check(self, tmp_path):
        report = lint(tmp_path, {"repro/service/other.py": """\
            def poke(emitter, job):
                return emitter.job_event("totally_unknown", job)
            """}, rules=["wire-parity"])
        assert report.findings == []


# -- lock-discipline -------------------------------------------------------

class TestLockDisciplineRule:
    def test_unlocked_read_fires(self, tmp_path):
        report = lint(tmp_path, {"repro/service/queue.py": """\
            import threading

            class Queue:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._jobs = []

                def add(self, job):
                    with self._lock:
                        self._jobs.append(job)

                def peek(self):
                    return self._jobs[0]
            """}, rules=["lock-discipline"])
        assert len(report.findings) == 1
        assert "Queue.peek" in report.findings[0].message

    def test_locked_suffix_convention_passes(self, tmp_path):
        report = lint(tmp_path, {"repro/service/queue.py": """\
            import threading

            class Queue:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._jobs = []

                def add(self, job):
                    with self._lock:
                        self._jobs.append(job)
                        return self._size_locked()

                def _size_locked(self):
                    return len(self._jobs)
            """}, rules=["lock-discipline"])
        assert report.findings == []

    def test_subscript_store_counts_as_write(self, tmp_path):
        report = lint(tmp_path, {"repro/service/table.py": """\
            import threading

            class Table:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._rows = {}

                def put(self, key, row):
                    with self._lock:
                        self._rows[key] = row

                def get(self, key):
                    return self._rows.get(key)
            """}, rules=["lock-discipline"])
        assert len(report.findings) == 1
        assert "Table.get" in report.findings[0].message

    def test_read_only_config_not_guarded(self, tmp_path):
        report = lint(tmp_path, {"repro/service/pool.py": """\
            import threading

            class Pool:
                def __init__(self, slots):
                    self._lock = threading.Lock()
                    self.slots = slots
                    self._held = 0

                def take(self):
                    with self._lock:
                        if self._held < self.slots:
                            self._held += 1
                            return True
                        return False

                def capacity(self):
                    return self.slots
            """}, rules=["lock-discipline"])
        assert report.findings == []

    def test_manual_acquire_skips_method(self, tmp_path):
        report = lint(tmp_path, {"repro/service/manual.py": """\
            import threading

            class Manual:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def bump(self):
                    with self._lock:
                        self._count += 1

                def legacy_bump(self):
                    self._lock.acquire()
                    try:
                        self._count += 1
                    finally:
                        self._lock.release()
            """}, rules=["lock-discipline"])
        assert report.findings == []


# -- except-policy ---------------------------------------------------------

class TestExceptPolicyRule:
    def test_bare_except_fires(self, tmp_path):
        report = lint(tmp_path, {"repro/service/a.py": """\
            def risky(fn):
                try:
                    return fn()
                except:
                    return None
            """}, rules=["except-policy"])
        assert len(report.findings) == 1
        assert "bare" in report.findings[0].message

    def test_silent_broad_catch_fires(self, tmp_path):
        report = lint(tmp_path, {"repro/service/a.py": """\
            def risky(fn):
                try:
                    return fn()
                except Exception:
                    pass
            """}, rules=["except-policy"])
        assert len(report.findings) == 1
        assert "swallows" in report.findings[0].message

    def test_handled_broad_catch_passes(self, tmp_path):
        report = lint(tmp_path, {"repro/service/a.py": """\
            def risky(fn, log, job):
                try:
                    return fn()
                except Exception as exc:
                    log.warning("failed: %s", exc)
                try:
                    return fn()
                except Exception:
                    raise
            """}, rules=["except-policy"])
        assert report.findings == []

    def test_generic_raise_fires(self, tmp_path):
        report = lint(tmp_path, {"repro/service/a.py": """\
            def check(flag):
                if not flag:
                    raise RuntimeError("bad flag")
            """}, rules=["except-policy"])
        assert len(report.findings) == 1
        assert "RuntimeError" in report.findings[0].message

    def test_repro_error_raise_passes(self, tmp_path):
        report = lint(tmp_path, {"repro/service/a.py": """\
            from repro.errors import ConfigError

            def check(flag):
                if not flag:
                    raise ConfigError("bad flag")
            """}, rules=["except-policy"])
        assert report.findings == []


# -- suppressions ----------------------------------------------------------

class TestSuppressions:
    def test_trailing_comment_suppresses_its_line(self, tmp_path):
        report = lint(tmp_path, {"repro/faults/a.py": """\
            import time

            def now():
                return time.time()  # repro-lint: disable=determinism -- test
            """}, rules=["determinism"])
        assert report.findings == []

    def test_standalone_comment_covers_next_line(self, tmp_path):
        report = lint(tmp_path, {"repro/faults/a.py": """\
            import time

            def now():
                # repro-lint: disable=determinism -- test fixture
                return time.time()
            """}, rules=["determinism"])
        assert report.findings == []

    def test_wrong_rule_name_does_not_suppress(self, tmp_path):
        report = lint(tmp_path, {"repro/faults/a.py": """\
            import time

            def now():
                return time.time()  # repro-lint: disable=wire-parity
            """}, rules=["determinism"])
        assert len(report.findings) == 1

    def test_disable_all(self, tmp_path):
        report = lint(tmp_path, {"repro/faults/a.py": """\
            import time

            def now():
                return time.time()  # repro-lint: disable=all
            """}, rules=["determinism"])
        assert report.findings == []

    def test_parse_suppressions_multi_rule(self):
        disabled = parse_suppressions(
            "x = 1  # repro-lint: disable=determinism, "
            "lock-discipline -- why\n")
        assert disabled[1] == {"determinism", "lock-discipline"}


# -- baseline --------------------------------------------------------------

class TestBaseline:
    FILES = {"repro/faults/a.py": """\
        import time

        def now():
            return time.time()
        """}

    def test_baselined_finding_does_not_fail(self, tmp_path):
        report = lint(tmp_path, self.FILES, rules=["determinism"])
        assert not report.ok
        baseline = str(tmp_path / "baseline.json")
        assert write_baseline(report.findings, baseline) == 1
        again = run_lint(root=str(tmp_path),
                         rule_names=["determinism"],
                         baseline_path=baseline)
        assert again.ok
        assert len(again.baselined) == 1
        assert again.findings and again.failures == []

    def test_baseline_matches_without_line_numbers(self, tmp_path):
        report = lint(tmp_path, self.FILES, rules=["determinism"])
        baseline = str(tmp_path / "baseline.json")
        write_baseline(report.findings, baseline)
        # Shift the offending line; identity (rule, path, message)
        # still matches.
        path = tmp_path / "repro/faults/a.py"
        path.write_text("import time\n\n\n\ndef now():\n"
                        "    return time.time()\n")
        again = run_lint(root=str(tmp_path),
                         rule_names=["determinism"],
                         baseline_path=baseline)
        assert again.ok and len(again.baselined) == 1

    def test_new_finding_still_fails(self, tmp_path):
        report = lint(tmp_path, self.FILES, rules=["determinism"])
        baseline = str(tmp_path / "baseline.json")
        write_baseline(report.findings, baseline)
        path = tmp_path / "repro/faults/a.py"
        path.write_text(path.read_text()
                        + "\ndef later():\n"
                          "    return time.monotonic()\n")
        again = run_lint(root=str(tmp_path),
                         rule_names=["determinism"],
                         baseline_path=baseline)
        assert not again.ok
        assert len(again.failures) == 1
        assert "time.monotonic" in again.failures[0].message

    def test_bad_baseline_is_a_config_error(self, tmp_path):
        make_tree(tmp_path, self.FILES)
        bad = tmp_path / "baseline.json"
        bad.write_text("{not json")
        with pytest.raises(ConfigError):
            run_lint(root=str(tmp_path), baseline_path=str(bad))


# -- rule selection --------------------------------------------------------

class TestSelection:
    def test_unknown_rule_is_a_config_error(self):
        with pytest.raises(ConfigError):
            select_rules(["nosuch-rule"])

    def test_rule_filter_limits_scope(self, tmp_path):
        report = lint(tmp_path, {"repro/faults/a.py": """\
            import time

            def risky(fn):
                try:
                    return fn()
                except:
                    return time.time()
            """}, rules=["except-policy"])
        assert rules_fired(report) == ["except-policy"]
