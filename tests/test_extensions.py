"""Tests for the extension features: Section-4.3 real-time analysis,
the MSHR limit, and stats export."""

import json

import pytest

from repro.analytical.model import (min_guarantee_window,
                                    worst_case_instructions)
from repro.core.config import DUAL_REDUNDANT
from repro.errors import ConfigError
from repro.functional.checker import compare_states
from repro.functional.simulator import run_functional
from repro.uarch.config import MachineConfig
from repro.uarch.processor import simulate
from repro.workloads.microbench import vector_sum


class TestRealTimeGuarantees:
    def test_no_faults_full_window(self):
        assert worst_case_instructions(1000, 2.0, 20, 0) == 2000

    def test_faults_eat_the_window(self):
        assert worst_case_instructions(1000, 2.0, 20, 5) == 1800

    def test_window_can_be_devoured(self):
        """Fine-grain guarantees become impossible with large Y."""
        assert worst_case_instructions(1000, 2.0, 2000, 1) == 0

    def test_min_window_inverse_relation(self):
        window = min_guarantee_window(1800, 2.0, 20, 5)
        assert worst_case_instructions(window, 2.0, 20, 5) == \
            pytest.approx(1800)

    def test_min_window_linear_in_penalty(self):
        """Section 4.3: a large Y can only be amortised over a
        correspondingly large window."""
        fine = min_guarantee_window(1000, 1.0, 20, 3)
        coarse = min_guarantee_window(1000, 1.0, 2000, 3)
        assert coarse - fine == pytest.approx(3 * (2000 - 20))

    def test_validation(self):
        with pytest.raises(ConfigError):
            worst_case_instructions(-1, 1.0, 20, 0)
        with pytest.raises(ConfigError):
            min_guarantee_window(100, 0.0, 20, 0)


class TestMshrLimit:
    def _missy_program(self):
        # A footprint far larger than the 32 KB L1D, strided to miss.
        from repro.isa.builder import ProgramBuilder
        from repro.isa.opcodes import Op
        builder = ProgramBuilder("missy")
        builder.space(1 << 14)
        builder.emit(Op.ADDI, rd=1, rs1=0, imm=0)
        builder.emit(Op.ADDI, rd=2, rs1=0, imm=256)
        builder.label("loop")
        for offset in range(0, 32, 8):
            builder.emit(Op.LW, rd=3, rs1=1, imm=offset * 16)
        builder.emit(Op.ADDI, rd=1, rs1=1, imm=8)
        builder.emit(Op.ANDI, rd=1, rs1=1, imm=(1 << 14) - 1)
        builder.emit(Op.ADDI, rd=2, rs1=2, imm=-1)
        builder.branch(Op.BNE, rs1=2, rs2=0, target="loop")
        builder.halt()
        return builder.build()

    def test_unlimited_by_default(self):
        assert MachineConfig().mshr_count is None

    def test_limit_preserves_correctness(self):
        program = self._missy_program()
        golden = run_functional(program)
        processor = simulate(program,
                             config=MachineConfig(mshr_count=1),
                             lockstep=True)
        assert compare_states(processor.arch, golden.state).clean

    def test_tight_limit_costs_cycles(self):
        program = self._missy_program()
        free = simulate(program, config=MachineConfig())
        tight = simulate(program, config=MachineConfig(mshr_count=1))
        assert tight.stats.cycles > free.stats.cycles

    def test_limit_with_redundancy(self):
        program = self._missy_program()
        golden = run_functional(program)
        processor = simulate(program,
                             config=MachineConfig(mshr_count=2),
                             ft=DUAL_REDUNDANT, lockstep=True)
        assert compare_states(processor.arch, golden.state).clean


class TestStatsExport:
    def test_as_dict_round_trips_through_json(self):
        processor = simulate(vector_sum(length=32))
        data = processor.stats.as_dict()
        encoded = json.dumps(data)
        decoded = json.loads(encoded)
        assert decoded["instructions"] == processor.stats.instructions
        assert decoded["ipc"] == pytest.approx(processor.stats.ipc)

    def test_derived_metrics_present(self):
        processor = simulate(vector_sum(length=32))
        data = processor.stats.as_dict()
        for key in ("ipc", "cpi", "branch_accuracy",
                    "avg_recovery_penalty"):
            assert key in data
