"""Section-4 analytical model tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analytical.figures import (figure3_series, figure4_series,
                                      format_figure_table, lambda_grid)
from repro.analytical.model import (crossover_frequency, faulty_ipc,
                                    ipc_with_faults, model_valid,
                                    rewind_rate_full_check,
                                    rewind_rate_majority,
                                    steady_state_ipc,
                                    steady_state_penalty)
from repro.errors import ConfigError

rates = st.floats(min_value=0.0, max_value=1.0)


class TestSteadyState:
    def test_free_redundancy_below_bottleneck(self):
        # IPC1=1, bottleneck 4: two threads fit without contention.
        assert steady_state_ipc(1.0, 2, 4.0) == pytest.approx(1.0)

    def test_saturated_redundancy_halves(self):
        # The paper's IPC1 = B case: IPC_2 = B/2.
        assert steady_state_ipc(4.0, 2, 4.0) == pytest.approx(2.0)
        assert steady_state_ipc(4.0, 3, 4.0) == pytest.approx(4.0 / 3)

    def test_formula_equals_min_form(self):
        """IPC_R = IPC1 - max(0, R*IPC1 - B)/R == min(IPC1, B/R)."""
        for ipc1 in (0.5, 1.0, 2.0, 4.0):
            for redundancy in (1, 2, 3):
                for bottleneck in (1.0, 2.0, 8.0):
                    assert steady_state_ipc(
                        ipc1, redundancy, bottleneck) == pytest.approx(
                        min(ipc1, bottleneck / redundancy))

    def test_penalty_fraction(self):
        assert steady_state_penalty(4.0, 2, 4.0) == pytest.approx(0.5)
        assert steady_state_penalty(1.0, 2, 4.0) == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            steady_state_ipc(1.0, 0, 1.0)
        with pytest.raises(ConfigError):
            steady_state_ipc(1.0, 2, 0.0)


class TestRewindRates:
    @given(rates)
    def test_full_check_rate_bounded(self, lam):
        rate = rewind_rate_full_check(2, lam)
        assert 0.0 <= rate <= 1.0

    def test_full_check_linear_for_small_lambda(self):
        assert rewind_rate_full_check(2, 1e-6) == pytest.approx(
            2e-6, rel=1e-3)
        assert rewind_rate_full_check(3, 1e-6) == pytest.approx(
            3e-6, rel=1e-3)

    def test_majority_rate_is_quadratic(self):
        lam = 1e-4
        majority = rewind_rate_majority(3, lam, 2)
        assert majority == pytest.approx(3 * lam * lam, rel=1e-2)

    @given(rates)
    def test_majority_never_exceeds_full_check(self, lam):
        assert rewind_rate_majority(3, lam, 2) <= \
            rewind_rate_full_check(3, lam) + 1e-12

    def test_unanimous_threshold_rewinds_on_any_strike(self):
        lam = 0.01
        assert rewind_rate_majority(3, lam, 3) == pytest.approx(
            rewind_rate_full_check(3, lam))


class TestFaultyIpc:
    def test_zero_rate_is_steady_state(self):
        assert faulty_ipc(1.0, 2, 1.0, 0.0, 20) == pytest.approx(0.5)

    def test_monotone_decreasing_in_lambda(self):
        values = [faulty_ipc(1.0, 2, 1.0, lam, 20)
                  for lam in (1e-6, 1e-4, 1e-2)]
        assert values[0] > values[1] > values[2]

    def test_flat_until_lambda_approaches_inverse_penalty(self):
        """The paper: IPC stays constant until 1/lam is within ~2 orders
        of magnitude of Y."""
        flat = faulty_ipc(1.0, 2, 1.0, 1e-6, 20)
        assert flat == pytest.approx(0.5, rel=1e-3)

    def test_higher_penalty_hurts_more(self):
        lam = 1e-3
        assert faulty_ipc(1.0, 2, 1.0, lam, 2000) < \
            faulty_ipc(1.0, 2, 1.0, lam, 20)

    def test_zero_ipc_guard(self):
        assert ipc_with_faults(0.0, 0.5, 20) == 0.0


class TestCrossover:
    def test_r2_beats_r3_at_low_rates(self):
        low = 1e-6
        r2 = faulty_ipc(1.0, 2, 1.0, low, 20)
        r3 = faulty_ipc(1.0, 3, 1.0, low, 20, majority=True)
        assert r2 > r3

    def test_r3_majority_wins_at_extreme_rates(self):
        high = 0.05
        r2 = faulty_ipc(1.0, 2, 1.0, high, 20)
        r3 = faulty_ipc(1.0, 3, 1.0, high, 20, majority=True)
        assert r3 > r2

    def test_crossover_found_and_high(self):
        crossing = crossover_frequency(0.5, 1.0 / 3, 20)
        assert crossing is not None
        # The paper: "the cross-over occurs at a much higher fault
        # frequency than what our design is intended for".
        assert crossing > 1e-3

    def test_no_crossover_reported_when_absent(self):
        # With identical steady states, R=2 dominates at every rate.
        assert crossover_frequency(0.5, 0.5, 20, hi=1e-4) is None


class TestFigures:
    def test_lambda_grid_is_monotone(self):
        grid = lambda_grid()
        assert all(a < b for a, b in zip(grid, grid[1:]))

    def test_figure3_baselines(self):
        series = figure3_series()
        first = series[0]
        assert first.ipc_r2 == pytest.approx(0.5, rel=1e-4)
        assert first.ipc_r3_rewind == pytest.approx(1 / 3, rel=1e-4)

    def test_figure4_only_differs_at_high_rates(self):
        """Y has 'minimal effect on average IPC for reasonable lam'."""
        fig3 = {p.lam: p for p in figure3_series()}
        fig4 = {p.lam: p for p in figure4_series()}
        low = 1e-7
        assert fig3[low].ipc_r2 == pytest.approx(fig4[low].ipc_r2,
                                                 rel=1e-2)
        high = max(fig3)
        assert fig4[high].ipc_r2 < fig3[high].ipc_r2

    def test_figure3_curves_cross(self):
        series = figure3_series()
        r2_beats = [p.ipc_r2 > p.ipc_r3_majority for p in series]
        assert r2_beats[0] and not r2_beats[-1]

    def test_validity_flag_marks_extreme_rates(self):
        series = figure4_series()  # Y=2000: invalid region starts early
        assert not series[-1].valid
        assert series[0].valid

    def test_format_table(self):
        table = format_figure_table(figure3_series()[:3], "Figure 3")
        assert "Figure 3" in table and "IPC(R=2)" in table

    def test_model_validity_boundary(self):
        assert model_valid(1e-6, 20)
        assert not model_valid(0.01, 2000)
