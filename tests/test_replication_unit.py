"""Unit tests for the Replicator (instruction injection) in isolation."""

import pytest

from repro.core.faults import FaultConfig, FaultInjector
from repro.core.replication import Replicator
from repro.core.rob import DONE, READY, WAITING
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.uarch.fetch import FetchRecord
from repro.uarch.rename import MapTableRenamer


def _record(inst, pc=0):
    return FetchRecord(pc, inst, pc + 1, False, None, fetch_cycle=1)


def _replicator(redundancy=2, committed=None, injector=None):
    renamer = MapTableRenamer()
    committed = committed or {}
    return Replicator(redundancy, renamer,
                      lambda areg: committed.get(areg, 0),
                      fault_injector=injector), renamer


class TestGroupConstruction:
    def test_r_copies_created(self):
        replicator, _ = _replicator(redundancy=3)
        group = replicator.build_group(
            _record(Instruction(Op.ADDI, rd=1, rs1=0, imm=5)), cycle=1)
        assert len(group.copies) == 3
        assert [entry.copy for entry in group.copies] == [0, 1, 2]

    def test_vidx_block_alignment(self):
        replicator, _ = _replicator(redundancy=2)
        first = replicator.build_group(
            _record(Instruction(Op.ADDI, rd=1, rs1=0, imm=5)), cycle=1)
        second = replicator.build_group(
            _record(Instruction(Op.ADDI, rd=2, rs1=1, imm=1)), cycle=1)
        assert [e.vidx for e in first.copies] == [0, 1]
        assert [e.vidx for e in second.copies] == [2, 3]

    def test_gseq_monotonic(self):
        replicator, _ = _replicator()
        groups = [replicator.build_group(
            _record(Instruction(Op.NOP)), cycle=1) for _ in range(3)]
        assert [g.gseq for g in groups] == [0, 1, 2]

    def test_nop_and_halt_complete_at_dispatch(self):
        replicator, _ = _replicator()
        nop = replicator.build_group(_record(Instruction(Op.NOP)), 1)
        halt = replicator.build_group(_record(Instruction(Op.HALT),
                                              pc=5), 1)
        assert nop.complete and halt.complete
        assert all(entry.state == DONE for entry in nop.copies)
        assert halt.copies[0].next_pc == 5  # halt spins on itself


class TestOperandWiring:
    def test_committed_value_captured_immediately(self):
        replicator, _ = _replicator(committed={3: 42})
        group = replicator.build_group(
            _record(Instruction(Op.ADDI, rd=1, rs1=3, imm=0)), 1)
        for entry in group.copies:
            assert entry.state == READY
            assert entry.src_vals[0] == 42

    def test_r0_reads_zero_without_renaming(self):
        replicator, renamer = _replicator()
        renamer.set_dest(0, "bogus")  # must be ignored
        group = replicator.build_group(
            _record(Instruction(Op.ADDI, rd=1, rs1=0, imm=0)), 1)
        assert group.copies[0].src_vals[0] == 0
        assert group.copies[0].src_tags[0] is None

    def test_in_flight_producer_links_same_copy(self):
        replicator, _ = _replicator(redundancy=2)
        producer = replicator.build_group(
            _record(Instruction(Op.ADDI, rd=1, rs1=0, imm=7)), 1)
        consumer = replicator.build_group(
            _record(Instruction(Op.ADDI, rd=2, rs1=1, imm=0)), 1)
        for k, entry in enumerate(consumer.copies):
            assert entry.state == WAITING
            assert entry.pending == 1
            # Registered on the same-copy producer's dependent list.
            assert (entry, 0) in producer.copies[k].dependents
            assert entry.src_tags[0] == producer.copies[k].vidx

    def test_completed_producer_value_forwarded(self):
        replicator, _ = _replicator(redundancy=2)
        producer = replicator.build_group(
            _record(Instruction(Op.ADDI, rd=1, rs1=0, imm=7)), 1)
        for entry in producer.copies:
            entry.value = 7
            entry.state = DONE
        consumer = replicator.build_group(
            _record(Instruction(Op.ADDI, rd=2, rs1=1, imm=0)), 1)
        assert all(entry.state == READY for entry in consumer.copies)
        assert consumer.copies[1].src_vals[0] == 7

    def test_youngest_producer_wins(self):
        replicator, _ = _replicator()
        replicator.build_group(
            _record(Instruction(Op.ADDI, rd=1, rs1=0, imm=1)), 1)
        newer = replicator.build_group(
            _record(Instruction(Op.ADDI, rd=1, rs1=0, imm=2)), 1)
        consumer = replicator.build_group(
            _record(Instruction(Op.ADDI, rd=2, rs1=1, imm=0)), 1)
        assert consumer.copies[0].src_tags[0] == newer.copies[0].vidx

    def test_two_source_operands(self):
        replicator, _ = _replicator(committed={2: 5, 3: 6})
        group = replicator.build_group(
            _record(Instruction(Op.ADD, rd=1, rs1=2, rs2=3)), 1)
        assert group.copies[0].src_vals == [5, 6]


class TestFaultPlanning:
    def test_plans_attached_to_copies(self):
        injector = FaultInjector(FaultConfig(rate_per_million=1_000_000,
                                             seed=1,
                                             kind_weights={"value": 1.0}))
        replicator, _ = _replicator(injector=injector)
        group = replicator.build_group(
            _record(Instruction(Op.ADDI, rd=1, rs1=0, imm=5)), 1)
        assert all(entry.fault_kind == "value"
                   for entry in group.copies)

    def test_no_injector_no_plans(self):
        replicator, _ = _replicator()
        group = replicator.build_group(
            _record(Instruction(Op.ADDI, rd=1, rs1=0, imm=5)), 1)
        assert all(entry.fault_kind is None for entry in group.copies)
