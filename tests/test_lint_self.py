"""Self-lint: the repo's own source tree must pass ``repro-ft lint``.

This is the tier-1 wiring of the analyzer — plus the two mutation
checks from the issue's acceptance list: editing a copy of the frozen
oracle, or seeding ``time.time()`` into a copy of
``campaign/outcome.py``, must turn the lint run (library and CLI
alike) red.
"""

import json
import os
import shutil

from repro.harness.cli import main
from repro.lint import DEFAULT_ROOT, run_lint
from repro.lint.oracle import REFERENCE_PATH

OUTCOME_PATH = "repro/campaign/outcome.py"


def copy_into_tree(tmp_path, rel):
    """Copy one real source file into a fixture tree; returns its
    destination path."""
    dest = tmp_path / rel
    dest.parent.mkdir(parents=True, exist_ok=True)
    shutil.copy(os.path.join(DEFAULT_ROOT, rel), dest)
    return dest


class TestSelfLint:
    def test_repo_is_lint_clean(self):
        report = run_lint()
        assert report.ok, "lint failures:\n%s" % "\n".join(
            finding.render() for finding in report.failures)

    def test_cli_exit_code_zero_on_clean_repo(self, capsys):
        assert main(["lint"]) == 0
        assert "lint: OK" in capsys.readouterr().out

    def test_cli_json_report(self, capsys):
        assert main(["lint", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["counts"]["failures"] == 0

    def test_cli_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("determinism", "frozen-oracle", "wire-parity",
                     "lock-discipline", "except-policy"):
            assert rule in out


class TestOracleMutation:
    def test_edited_oracle_copy_fails_lint(self, tmp_path):
        dest = copy_into_tree(tmp_path, REFERENCE_PATH)
        dest.write_text(dest.read_text()
                        + "\n\ndef backdoor():\n    return 0\n")
        report = run_lint(root=str(tmp_path),
                          rule_names=["frozen-oracle"])
        assert not report.ok
        assert any("fingerprint" in f.message
                   for f in report.failures)

    def test_edited_oracle_copy_fails_cli(self, tmp_path, capsys):
        dest = copy_into_tree(tmp_path, REFERENCE_PATH)
        dest.write_text(dest.read_text().replace(
            "def ", "def x_", 1))
        assert main(["lint", "--root", str(tmp_path),
                     "--rule", "frozen-oracle"]) == 1
        assert "frozen-oracle" in capsys.readouterr().out

    def test_pristine_oracle_copy_passes(self, tmp_path):
        copy_into_tree(tmp_path, REFERENCE_PATH)
        report = run_lint(root=str(tmp_path),
                          rule_names=["frozen-oracle"])
        assert report.ok


class TestDeterminismSeeding:
    def test_wall_clock_in_outcome_copy_fails_lint(self, tmp_path):
        dest = copy_into_tree(tmp_path, OUTCOME_PATH)
        dest.write_text(dest.read_text()
                        + "\n\nimport time\n\n"
                          "def _leaked_stamp():\n"
                          "    return time.time()\n")
        report = run_lint(root=str(tmp_path),
                          rule_names=["determinism"])
        assert not report.ok
        assert any("time.time" in f.message for f in report.failures)

    def test_wall_clock_in_outcome_copy_fails_cli(self, tmp_path,
                                                  capsys):
        dest = copy_into_tree(tmp_path, OUTCOME_PATH)
        dest.write_text(dest.read_text()
                        + "\n\nimport time\n"
                          "_T0 = time.monotonic()\n")
        assert main(["lint", "--root", str(tmp_path),
                     "--rule", "determinism"]) == 1
        out = capsys.readouterr().out
        assert "determinism" in out and "0 failing" not in out

    def test_pristine_outcome_copy_passes(self, tmp_path):
        copy_into_tree(tmp_path, OUTCOME_PATH)
        report = run_lint(root=str(tmp_path),
                          rule_names=["determinism"])
        assert report.ok
