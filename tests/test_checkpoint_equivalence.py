"""Checkpointed fast-forward must never change a record byte.

The hard contract of :mod:`repro.campaign.checkpoint`: for every
execution mode (checkpointing on or off, serial or persistent-worker
pool, fresh run or store resume) and every policy family (rate
injector, directed site list, structure sweep), the campaign's record
list is byte-for-byte identical.  Every test here compares full
``json.dumps(..., sort_keys=True)`` serializations, the same bytes the
stores persist.
"""

import json
import types

import pytest

from repro.campaign.api import CampaignSession, ExecutionOptions
from repro.campaign.checkpoint import (CellCheckpoints, default_interval,
                                       run_windowed_capturing)
from repro.campaign.golden import clear_trace_cache
from repro.campaign.outcome import clear_result_caches
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import open_store
from repro.models.presets import get_model
from repro.program.cache import cached_workload
from repro.uarch.processor import Processor
from repro.uarch.snapshot import ProcessorSnapshot


def bench_spec(**overrides):
    kwargs = dict(name="ckpt-eq", workloads=("fpppp",),
                  models=("SS-2",),
                  rates_per_million=(0.0, 1_000.0, 30_000.0),
                  replicates=2, instructions=300)
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


def record_lines(spec, options):
    clear_result_caches()
    clear_trace_cache()
    result = CampaignSession(spec, options=options).run()
    return [json.dumps(record, sort_keys=True)
            for record in result.records]


def assert_identical(spec, **checkpoint_kwargs):
    plain = record_lines(spec, ExecutionOptions())
    fast = record_lines(
        spec, ExecutionOptions(checkpointing=True, **checkpoint_kwargs))
    assert plain == fast


class TestSnapshotRestore:
    """Processor-level: restore continues the exact simulation."""

    def run_processor(self, segmented, target=400, pause=150):
        program = cached_workload("fpppp")
        model = get_model("SS-2")
        processor = Processor(program, config=model.config, ft=model.ft)
        if segmented:
            processor.run(max_instructions=pause, max_cycles=100_000)
            snapshot = ProcessorSnapshot(processor)
            processor = Processor(program, config=model.config,
                                  ft=model.ft)
            snapshot.restore_into(processor)
        remaining = target - processor.stats.instructions
        stats = processor.run(max_instructions=remaining,
                              max_cycles=100_000)
        return stats.as_dict()

    def test_restored_run_matches_straight_run(self):
        assert self.run_processor(False) == self.run_processor(True)

    def test_one_snapshot_serves_repeated_restores(self):
        program = cached_workload("fpppp")
        model = get_model("SS-2")
        source = Processor(program, config=model.config, ft=model.ft)
        source.run(max_instructions=150, max_cycles=100_000)
        snapshot = ProcessorSnapshot(source)
        finals = []
        for _ in range(2):
            processor = Processor(program, config=model.config,
                                  ft=model.ft)
            snapshot.restore_into(processor)
            stats = processor.run(
                max_instructions=400 - processor.stats.instructions,
                max_cycles=100_000)
            finals.append(stats.as_dict())
        assert finals[0] == finals[1]

    def test_restore_refuses_foreign_program(self):
        model = get_model("SS-2")
        source = Processor(cached_workload("fpppp"),
                           config=model.config, ft=model.ft)
        source.run(max_instructions=100, max_cycles=100_000)
        snapshot = ProcessorSnapshot(source)
        other = Processor(cached_workload("gcc"),
                          config=model.config, ft=model.ft)
        with pytest.raises(ValueError):
            snapshot.restore_into(other)

    def test_capturing_run_matches_straight_protocol(self):
        program = cached_workload("fpppp")
        model = get_model("SS-2")
        straight = Processor(program, config=model.config, ft=model.ft)
        straight.run(max_instructions=400, max_cycles=100_000)
        captured = []
        segmented = Processor(program, config=model.config, ft=model.ft)
        stats, _, _ = run_windowed_capturing(
            segmented, 400, max_cycles=100_000, interval=90,
            capture=lambda p: captured.append(p.stats.dispatched_groups))
        assert stats.as_dict() == straight.stats.as_dict()
        assert captured, "no checkpoint boundary was ever crossed"


class TestRecordEquivalence:
    """Session-level byte identity, checkpointing on vs off."""

    def test_rate_ladder(self):
        assert_identical(bench_spec())

    def test_second_redundant_model(self):
        assert_identical(bench_spec(models=("SS-3",),
                                    rates_per_million=(1_000.0,),
                                    replicates=1))

    def test_warmup_cell(self):
        # Warmup stamps land mid-protocol; the capturing and resumed
        # runs must place them exactly where run_windowed does.
        assert_identical(bench_spec(warmup=150))

    def test_explicit_odd_interval(self):
        assert_identical(bench_spec(), checkpoint_interval=37)

    def test_pc_heavy_kind_mix(self):
        # pc faults add a per-group draw ahead of the per-copy draws;
        # the prewalk must mirror that order exactly.
        assert_identical(bench_spec(
            mixes={"pc-heavy": {"pc": 0.6, "value": 0.4}}))

    def test_tight_cycle_budget_timeout(self):
        # A trial that exhausts max_cycles after restoring must report
        # the same timeout record as the full run.
        assert_identical(bench_spec(rates_per_million=(30_000.0,),
                                    max_cycles=700))

    def test_site_list_and_structure_sweep(self):
        assert_identical(bench_spec(
            rates_per_million=(0.0,), replicates=2,
            fault_sites={
                "strike-40": {"policy": "site_list",
                              "sites": [{"structure": "fu_result",
                                         "index": 40, "bit": 7}]},
                "sweep-rob": {"policy": "structure_sweep",
                              "structure": "rob_entry",
                              "strikes": 1}}))


class TestExecutionModes:
    """Pool and resume paths reproduce the serial records."""

    def test_persistent_worker_pool(self):
        spec = bench_spec()
        serial = record_lines(spec, ExecutionOptions())
        pooled = record_lines(
            spec, ExecutionOptions(workers=2, persistent_workers=True,
                                   checkpointing=True))
        assert serial == pooled

    def test_resume_from_partial_store(self, tmp_path):
        spec = bench_spec()
        serial = record_lines(spec, ExecutionOptions())
        store = open_store(str(tmp_path / "partial.jsonl"))
        for line in serial[:3]:
            store.append(json.loads(line))
        clear_result_caches()
        clear_trace_cache()
        session = CampaignSession(
            spec, options=ExecutionOptions(checkpointing=True),
            store=store)
        resumed = session.resume()
        assert [json.dumps(record, sort_keys=True)
                for record in resumed.records] == serial


class TestCheckpointSelection:
    """Pure logic of the per-cell snapshot ladder."""

    @staticmethod
    def ladder(*boundaries):
        return CellCheckpoints([
            types.SimpleNamespace(dispatched_groups=boundary,
                                  program=None)
            for boundary in boundaries])

    def test_best_before_picks_latest_safe_boundary(self):
        cell = self.ladder(50, 100, 150)
        snapshot, boundary = cell.best_before(120)
        assert boundary == 100
        assert snapshot.dispatched_groups == 100

    def test_best_before_exact_boundary_is_safe(self):
        # A snapshot at D is taken before group D's draws — a first
        # strike inside group D may still restore from it.
        _, boundary = self.ladder(50, 100).best_before(100)
        assert boundary == 100

    def test_best_before_none_when_strike_precedes_all(self):
        assert self.ladder(50, 100).best_before(49) is None

    def test_default_interval_floor(self):
        assert default_interval(100) == 50
        assert default_interval(1_600) == 200
        assert default_interval(1_500, warmup=500) == 250
