"""ECC tests: Hamming SECDED codec, parity, protected storage."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ecc.hamming import (CODEWORD_BITS, DecodeStatus,
                               UncorrectableError, decode, encode)
from repro.ecc.parity import check as parity_check
from repro.ecc.parity import encode as parity_encode
from repro.ecc.parity import parity_bit
from repro.ecc.protected import ProtectedArray, ProtectedRegister

u64s = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestHammingCodec:
    @given(u64s)
    def test_clean_round_trip(self, value):
        data, status = decode(encode(value))
        assert data == value
        assert status is DecodeStatus.CLEAN

    @given(u64s, st.integers(min_value=0, max_value=CODEWORD_BITS - 1))
    def test_any_single_bit_flip_corrected(self, value, bit):
        corrupted = encode(value) ^ (1 << bit)
        data, status = decode(corrupted)
        assert data == value
        assert status is DecodeStatus.CORRECTED

    @given(u64s,
           st.lists(st.integers(min_value=0, max_value=CODEWORD_BITS - 1),
                    min_size=2, max_size=2, unique=True))
    def test_any_double_bit_flip_detected(self, value, bits):
        corrupted = encode(value)
        for bit in bits:
            corrupted ^= 1 << bit
        _, status = decode(corrupted)
        assert status is DecodeStatus.UNCORRECTABLE

    def test_exhaustive_single_flip_for_one_word(self):
        word = 0xDEADBEEFCAFEF00D
        codeword = encode(word)
        for bit in range(CODEWORD_BITS):
            data, status = decode(codeword ^ (1 << bit))
            assert data == word
            assert status is DecodeStatus.CORRECTED

    def test_codeword_range_validated(self):
        with pytest.raises(ValueError):
            decode(1 << CODEWORD_BITS)


class TestParity:
    @given(u64s)
    def test_encode_check_round_trip(self, value):
        stored, parity = parity_encode(value)
        assert parity_check(stored, parity)

    @given(u64s, st.integers(min_value=0, max_value=63))
    def test_single_flip_detected(self, value, bit):
        stored, parity = parity_encode(value)
        assert not parity_check(stored ^ (1 << bit), parity)

    def test_parity_bit_values(self):
        assert parity_bit(0) == 0
        assert parity_bit(1) == 1
        assert parity_bit(0b11) == 0


class TestProtectedArray:
    def test_read_write(self):
        array = ProtectedArray(8)
        array.write(3, 12345)
        assert array.read(3) == 12345

    def test_single_flip_corrected_and_counted(self):
        array = ProtectedArray(4)
        array.write(0, 777)
        array.inject_bit_flip(0, 13)
        assert array.read(0) == 777
        assert array.corrected_errors == 1

    def test_scrub_on_read(self):
        array = ProtectedArray(4)
        array.write(0, 777)
        array.inject_bit_flip(0, 13)
        array.read(0)
        array.read(0)
        assert array.corrected_errors == 1  # second read is clean

    def test_double_flip_raises(self):
        array = ProtectedArray(4)
        array.write(1, 42)
        array.inject_random_flips(1, 2, random.Random(0))
        with pytest.raises(UncorrectableError):
            array.read(1)
        assert array.detected_uncorrectable == 1

    def test_bit_range_validated(self):
        array = ProtectedArray(1)
        with pytest.raises(ValueError):
            array.inject_bit_flip(0, CODEWORD_BITS)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            ProtectedArray(0)

    def test_len(self):
        assert len(ProtectedArray(17)) == 17


class TestProtectedRegister:
    def test_models_committed_next_pc(self):
        register = ProtectedRegister(0)
        register.write(4096)
        register.inject_bit_flip(7)
        assert register.read() == 4096
        assert register.corrected_errors == 1

    def test_double_flip_raises(self):
        register = ProtectedRegister(99)
        register.inject_bit_flip(3)
        register.inject_bit_flip(11)
        with pytest.raises(UncorrectableError):
            register.read()
