"""MachineConfig validation and latency-table tests."""

import pytest

from repro.errors import ConfigError
from repro.isa.opcodes import FuClass, Op
from repro.uarch.config import MachineConfig


class TestDefaults:
    def test_table1_widths(self):
        config = MachineConfig()
        assert config.fetch_width == 8
        assert config.dispatch_width == 8
        assert config.issue_width == 8
        assert config.commit_width == 8

    def test_table1_window(self):
        config = MachineConfig()
        assert config.rob_size == 128
        assert config.lsq_size == 64

    def test_table1_fu_mix(self):
        config = MachineConfig()
        assert (config.int_alu, config.int_mult) == (4, 2)
        assert (config.fp_add, config.fp_mult) == (2, 1)
        assert config.mem_ports == 2


class TestValidation:
    @pytest.mark.parametrize("field", ["fetch_width", "issue_width",
                                       "rob_size", "lsq_size",
                                       "mem_ports", "int_alu"])
    def test_zero_width_rejected(self, field):
        with pytest.raises(ConfigError):
            MachineConfig(**{field: 0})

    def test_optional_units_may_be_zero(self):
        config = MachineConfig(fp_mult=0, fp_add=0, int_mult=0)
        assert config.fp_mult == 0

    def test_unknown_rename_scheme_rejected(self):
        with pytest.raises(ConfigError):
            MachineConfig(rename_scheme="magic")


class TestLatencies:
    def test_alu_single_cycle(self):
        assert MachineConfig().op_latency(Op.ADD) == 1

    def test_division_latencies(self):
        config = MachineConfig()
        assert config.op_latency(Op.DIV) == config.lat_int_div
        assert config.op_latency(Op.FDIV) == config.lat_fp_div
        assert config.op_latency(Op.FSQRT) == config.lat_fp_sqrt

    def test_memory_ops_use_agen_latency(self):
        config = MachineConfig(lat_agen=2)
        assert config.op_latency(Op.LW) == 2
        assert config.op_latency(Op.SW) == 2

    def test_latency_tracks_config_changes(self):
        config = MachineConfig(lat_fp_mult=7)
        assert config.op_latency(Op.FMUL) == 7

    def test_every_opcode_has_a_latency(self):
        config = MachineConfig()
        for op in Op:
            assert config.op_latency(op) >= 1


class TestDerive:
    def test_derive_changes_only_named_fields(self):
        base = MachineConfig()
        derived = base.derive(int_alu=8)
        assert derived.int_alu == 8
        assert derived.rob_size == base.rob_size

    def test_fu_count_lookup(self):
        config = MachineConfig()
        assert config.fu_count(FuClass.INT_ALU) == 4
        assert config.fu_count(FuClass.MEM_PORT) == 2
