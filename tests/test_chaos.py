"""The chaos harness: seeded schedules and real disturbed runs.

The two end-to-end tests here use explicit early-firing schedules and
a reduced grid so the whole file stays inside a CI budget; the
full-size seeded runs live in the ``chaos-smoke`` CI job
(``repro-ft chaos``).
"""

import json

import pytest

from repro.errors import ConfigError
from repro.resilience.chaos import (ChaosOp, ChaosSchedule, KILL,
                                    STALL, TORN, TORN_FRAGMENT,
                                    run_orchestrate_chaos,
                                    run_service_chaos)

SMALL_SPEC = {
    "name": "chaos-test",
    "workloads": ["gcc"],
    "models": ["SS-1", "SS-2"],
    "rates_per_million": [0.0, 3000.0],
    "replicates": 8,
    "instructions": 3000,
}


class TestChaosSchedule:
    def test_deterministic_per_seed(self):
        one = ChaosSchedule.generate(42, kills=2, stalls=1, torn=1)
        two = ChaosSchedule.generate(42, kills=2, stalls=1, torn=1)
        assert [op.as_dict() for op in one.ops] \
            == [op.as_dict() for op in two.ops]
        other = ChaosSchedule.generate(43, kills=2, stalls=1, torn=1)
        assert [op.as_dict() for op in one.ops] \
            != [op.as_dict() for op in other.ops]

    def test_counts_and_ordering(self):
        schedule = ChaosSchedule.generate(7, kills=2, stalls=3, torn=1)
        assert schedule.counts() == {KILL: 2, STALL: 3, TORN: 1}
        assert schedule.applied_counts() == {KILL: 0, STALL: 0, TORN: 0}
        assert not schedule.all_applied()
        times = [op.at for op in schedule.ops]
        assert times == sorted(times)

    def test_validation(self):
        with pytest.raises(ConfigError):
            ChaosSchedule.generate(0, kills=-1)
        with pytest.raises(ConfigError):
            ChaosSchedule.generate(0, horizon=0.0)

    def test_torn_fragment_is_rejected_by_json(self):
        # The injected fragment must be exactly the kind of line the
        # store loaders already quarantine: invalid JSON.
        with pytest.raises(ValueError):
            json.loads(TORN_FRAGMENT)


class TestOrchestrateChaos:
    def test_kill_stall_torn_run_matches_clean_run(self, tmp_path):
        schedule = ChaosSchedule([ChaosOp(at=0.4, kind=KILL),
                                  ChaosOp(at=0.7, kind=TORN),
                                  ChaosOp(at=1.0, kind=STALL)])
        report = run_orchestrate_chaos(
            str(tmp_path / "chaos"), shards=2,
            heartbeat_lease=1.0, spec=SMALL_SPEC, schedule=schedule)
        assert report["error"] == ""
        assert report["ops_applied"] == {KILL: 1, STALL: 1, TORN: 1}
        assert report["identical_to_clean"]
        assert report["hung_detected"] >= 1
        assert report["ok"]


class TestServiceChaos:
    def test_killed_pool_worker_jobs_still_finish_identical(
            self, tmp_path):
        schedule = ChaosSchedule([ChaosOp(at=0.3, kind=KILL)])
        report = run_service_chaos(
            str(tmp_path / "svc"), jobs=2, slots=2,
            trial_timeout=5.0, runner_lease=5.0,
            spec=SMALL_SPEC, schedule=schedule)
        assert report["error"] == ""
        assert report["ops_applied"][KILL] == 1
        assert report["all_done"]
        assert report["records_mismatched"] == []
        assert report["ledger_ok"]
        assert report["ok"]
