"""Unit tests for opcode metadata consistency."""

import pytest

from repro.isa.opcodes import (CONDITIONAL_BRANCHES, INDIRECT_JUMPS,
                               MNEMONIC_TO_OP, OP_INFO, FuClass, Kind, Op,
                               op_info)


class TestMetadataCoverage:
    def test_every_opcode_has_info(self):
        for op in Op:
            assert op in OP_INFO

    def test_mnemonics_unique_and_total(self):
        assert len(MNEMONIC_TO_OP) == len(Op)

    def test_op_info_helper(self):
        assert op_info(Op.ADD) is OP_INFO[Op.ADD]


class TestOperandShapes:
    def test_alu_rr_reads_both_sources(self):
        info = OP_INFO[Op.ADD]
        assert info.reads_rs1 and info.reads_rs2 and info.writes_reg
        assert not info.uses_imm

    def test_alu_ri_uses_imm(self):
        info = OP_INFO[Op.ADDI]
        assert info.reads_rs1 and not info.reads_rs2 and info.uses_imm

    def test_store_reads_value_and_base(self):
        info = OP_INFO[Op.SW]
        assert info.reads_rs1 and info.reads_rs2
        assert not info.writes_reg

    def test_fp_store_reads_fp_value(self):
        info = OP_INFO[Op.FSW]
        assert info.fp_rs2 and not info.fp_rs1

    def test_loads_write_correct_regfile(self):
        assert not OP_INFO[Op.LW].fp_dest
        assert OP_INFO[Op.FLW].fp_dest

    def test_conversions_cross_register_files(self):
        cvtif = OP_INFO[Op.CVTIF]
        assert cvtif.fp_dest and not cvtif.fp_rs1
        cvtfi = OP_INFO[Op.CVTFI]
        assert not cvtfi.fp_dest and cvtfi.fp_rs1

    def test_fp_compare_writes_int_register(self):
        info = OP_INFO[Op.FCMPLT]
        assert not info.fp_dest and info.fp_rs1 and info.fp_rs2


class TestFunctionalUnitAssignment:
    def test_divisions_are_unpipelined(self):
        for op in (Op.DIV, Op.REM, Op.FDIV, Op.FSQRT):
            assert OP_INFO[op].unpipelined, op

    def test_everything_else_is_pipelined(self):
        unpipelined = {Op.DIV, Op.REM, Op.FDIV, Op.FSQRT}
        for op in Op:
            if op not in unpipelined:
                assert not OP_INFO[op].unpipelined, op

    def test_int_div_shares_multiplier_unit(self):
        assert OP_INFO[Op.DIV].fu == FuClass.INT_MULT
        assert OP_INFO[Op.MUL].fu == FuClass.INT_MULT

    def test_fp_div_shares_fp_mult_unit(self):
        assert OP_INFO[Op.FDIV].fu == FuClass.FP_MULT
        assert OP_INFO[Op.FSQRT].fu == FuClass.FP_MULT

    def test_memory_ops_use_mem_port_class(self):
        for op in (Op.LW, Op.SW, Op.FLW, Op.FSW):
            assert OP_INFO[op].fu == FuClass.MEM_PORT


class TestControlFlowClasses:
    def test_conditional_branch_set(self):
        assert CONDITIONAL_BRANCHES == {Op.BEQ, Op.BNE, Op.BLT, Op.BGE}
        for op in CONDITIONAL_BRANCHES:
            assert OP_INFO[op].kind == Kind.BRANCH

    def test_indirect_jump_set(self):
        assert INDIRECT_JUMPS == {Op.JR, Op.JALR}

    def test_links_write_registers(self):
        assert OP_INFO[Op.JAL].writes_reg
        assert OP_INFO[Op.JALR].writes_reg
        assert not OP_INFO[Op.J].writes_reg
        assert not OP_INFO[Op.JR].writes_reg

    @pytest.mark.parametrize("op", [Op.BEQ, Op.J, Op.JR])
    def test_is_control_property(self, op):
        assert OP_INFO[op].is_control

    def test_mem_property(self):
        assert OP_INFO[Op.LW].is_mem
        assert OP_INFO[Op.FSW].is_mem
        assert not OP_INFO[Op.ADD].is_mem
