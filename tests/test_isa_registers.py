"""Unit tests for register naming and the unified index space."""

import pytest

from repro.isa.registers import (FP_BASE, NUM_INT_REGS, NUM_LOGICAL_REGS,
                                 RA, SP, ZERO, fp_reg, int_reg, is_fp_reg,
                                 parse_reg, reg_name)


class TestIndexSpace:
    def test_int_regs_map_identity(self):
        assert int_reg(0) == 0
        assert int_reg(31) == 31

    def test_fp_regs_offset_by_base(self):
        assert fp_reg(0) == FP_BASE
        assert fp_reg(31) == FP_BASE + 31

    def test_space_is_disjoint(self):
        ints = {int_reg(i) for i in range(NUM_INT_REGS)}
        fps = {fp_reg(i) for i in range(32)}
        assert not ints & fps
        assert len(ints | fps) == NUM_LOGICAL_REGS

    def test_conventional_registers(self):
        assert ZERO == 0
        assert SP == 29
        assert RA == 31

    @pytest.mark.parametrize("bad", [-1, 32, 100])
    def test_out_of_range_int_reg(self, bad):
        with pytest.raises(ValueError):
            int_reg(bad)

    @pytest.mark.parametrize("bad", [-1, 32])
    def test_out_of_range_fp_reg(self, bad):
        with pytest.raises(ValueError):
            fp_reg(bad)


class TestNaming:
    def test_round_trip_all_registers(self):
        for index in range(NUM_LOGICAL_REGS):
            assert parse_reg(reg_name(index)) == index

    def test_is_fp_reg(self):
        assert not is_fp_reg(0)
        assert not is_fp_reg(31)
        assert is_fp_reg(FP_BASE)
        assert is_fp_reg(NUM_LOGICAL_REGS - 1)

    def test_parse_accepts_whitespace_and_case(self):
        assert parse_reg(" R5 ") == 5
        assert parse_reg("F3") == fp_reg(3)

    @pytest.mark.parametrize("bad", ["x5", "r", "f", "r-1", "rr2", "5",
                                     "r32", "f99"])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_reg(bad)

    def test_name_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            reg_name(NUM_LOGICAL_REGS)
