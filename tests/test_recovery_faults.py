"""RecoveryController and FaultInjector unit tests."""

import pytest

from repro.core.config import DUAL_REDUNDANT, TRIPLE_MAJORITY, FTConfig
from repro.core.detection import CheckResult
from repro.core.faults import (FaultConfig, FaultInjector)
from repro.core.recovery import (ACTION_MAJORITY_COMMIT, ACTION_REWIND,
                                 RecoveryController)
from repro.errors import ConfigError
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op


class TestFtConfig:
    def test_r1_is_unprotected(self):
        assert not FTConfig(redundancy=1).protected
        assert DUAL_REDUNDANT.protected

    def test_majority_requires_r3(self):
        with pytest.raises(ConfigError):
            FTConfig(redundancy=2, majority_election=True)

    def test_threshold_bounds(self):
        with pytest.raises(ConfigError):
            FTConfig(redundancy=3, majority_election=True,
                     acceptance_threshold=4)
        with pytest.raises(ConfigError):
            FTConfig(redundancy=3, majority_election=True,
                     acceptance_threshold=1)

    def test_zero_redundancy_rejected(self):
        with pytest.raises(ConfigError):
            FTConfig(redundancy=0)


class TestRecoveryController:
    def _mismatch(self, majority):
        return CheckResult(ok=False, representative=0 if majority else -1,
                           majority=majority, agree_count=2)

    def test_rewind_decision(self):
        controller = RecoveryController(DUAL_REDUNDANT)
        assert controller.decide(self._mismatch(False)) == ACTION_REWIND
        assert controller.rewinds == 1

    def test_majority_decision(self):
        controller = RecoveryController(TRIPLE_MAJORITY)
        action = controller.decide(self._mismatch(True))
        assert action == ACTION_MAJORITY_COMMIT
        assert controller.majority_commits == 1
        assert controller.rewinds == 0

    def test_penalty_accounting(self):
        controller = RecoveryController(DUAL_REDUNDANT)
        controller.decide(self._mismatch(False))
        controller.on_rewind(100)
        controller.on_commit(130)
        assert controller.average_penalty == pytest.approx(30.0)

    def test_back_to_back_rewinds_merge(self):
        controller = RecoveryController(DUAL_REDUNDANT)
        controller.decide(self._mismatch(False))
        controller.decide(self._mismatch(False))
        controller.on_rewind(100)
        controller.on_rewind(110)  # before any commit: same outage
        controller.on_commit(140)
        assert controller.recovery_cycles == 40
        assert controller.average_penalty == pytest.approx(20.0)

    def test_commit_without_rewind_is_noop(self):
        controller = RecoveryController(DUAL_REDUNDANT)
        controller.on_commit(50)
        assert controller.recovery_cycles == 0


class TestFaultConfig:
    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigError):
            FaultConfig(rate_per_million=-1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            FaultConfig(kind_weights={"bogus": 1.0})

    def test_rate_conversion(self):
        assert FaultConfig(rate_per_million=100).rate == pytest.approx(
            1e-4)


class TestFaultInjector:
    def test_zero_rate_never_plans(self):
        injector = FaultInjector(FaultConfig(rate_per_million=0))
        inst = Instruction(Op.ADD, rd=1, rs1=2, rs2=3)
        assert all(injector.plan_for_copy(inst) is None
                   for _ in range(1000))

    def test_deterministic_given_seed(self):
        inst = Instruction(Op.ADD, rd=1, rs1=2, rs2=3)
        plans_a = [FaultInjector(FaultConfig(rate_per_million=50_000,
                                             seed=3)).plan_for_copy(inst)
                   for _ in range(1)]
        injector_b = FaultInjector(FaultConfig(rate_per_million=50_000,
                                               seed=3))
        assert plans_a[0] == injector_b.plan_for_copy(inst)

    def test_rate_approximately_respected(self):
        injector = FaultInjector(FaultConfig(rate_per_million=100_000,
                                             seed=1))
        inst = Instruction(Op.ADD, rd=1, rs1=2, rs2=3)
        hits = sum(injector.plan_for_copy(inst) is not None
                   for _ in range(20_000))
        assert 1500 < hits < 2600  # expect ~2000

    def test_address_kind_only_for_mem(self):
        weights = {"address": 1.0}
        injector = FaultInjector(FaultConfig(rate_per_million=1_000_000,
                                             kind_weights=weights))
        alu = Instruction(Op.ADD, rd=1, rs1=2, rs2=3)
        plan = injector.plan_for_copy(alu)
        assert plan.kind == "value"  # refitted to an existing site
        load = Instruction(Op.LW, rd=1, rs1=2, imm=0)
        assert injector.plan_for_copy(load).kind == "address"

    def test_branch_kind_only_for_control(self):
        weights = {"branch": 1.0}
        injector = FaultInjector(FaultConfig(rate_per_million=1_000_000,
                                             kind_weights=weights))
        branch = Instruction(Op.BNE, rs1=1, rs2=0, imm=1)
        assert injector.plan_for_copy(branch).kind == "branch"
        alu = Instruction(Op.ADD, rd=1, rs1=2, rs2=3)
        assert injector.plan_for_copy(alu).kind == "value"

    def test_nop_has_no_fault_site(self):
        weights = {"value": 1.0}
        injector = FaultInjector(FaultConfig(rate_per_million=1_000_000,
                                             kind_weights=weights))
        assert injector.plan_for_copy(Instruction(Op.NOP)) is None

    def test_reset_restores_sequence(self):
        injector = FaultInjector(FaultConfig(rate_per_million=200_000,
                                             seed=11))
        inst = Instruction(Op.ADD, rd=1, rs1=2, rs2=3)
        first = [injector.plan_for_copy(inst) for _ in range(50)]
        injector.reset()
        second = [injector.plan_for_copy(inst) for _ in range(50)]
        assert first == second
