"""``bench --diff`` / ``--check`` end-to-end on fixture histories.

None of these tests run the real bench — they build synthetic
histories (the same file layout ``repro-ft bench`` writes) and drive
the differ and the CLI against them: an injected 20% regression must
gate DEGRADED and exit 1, an improvement must pass, identical reruns
must read UNCHANGED deterministically across seeds, and a host change
mid-history — which the committed history actually contains — must be
refused into ratio-only mode instead of comparing wall seconds across
machines.
"""

import json

import pytest

from repro.errors import HistoryError
from repro.harness.cli import main
from repro.perf import (ABSOLUTE, DEGRADED, IMPROVED, RATIO_ONLY,
                        UNCHANGED, BenchHistory, DiffConfig,
                        check_history, diff_entries, diff_refs,
                        find_baseline, format_diff_report,
                        format_history_report, history_report)
from repro.perf.history import BenchEntry

from test_perf_history import COMMITTED, make_entry


def entry_with(optimized, reference=None, plat="linux-test",
               spec=None, generated="2026-08-07T00:00:00+0000",
               note=""):
    """A v3 fixture entry around explicit per-repeat second lists."""
    reference = reference or [value * 4.0 for value in optimized]
    return make_entry(optimized=optimized, reference=reference,
                      plat=plat, spec=spec, generated=generated,
                      note=note,
                      phases={"decode": [0.1] * len(optimized),
                              "simulate": [value * 0.7
                                           for value in optimized]})


#: Five nearly-constant repeats around one second — the shape a real
#: ``--repeats 5`` run produces on a quiet host.
BASE = [1.0, 1.001, 1.002, 1.003, 1.004]
SLOWER = [value * 1.2 for value in BASE]     # the acceptance criterion
FASTER = [value * 0.8 for value in BASE]


def history_of(*entries):
    return BenchHistory(list(entries))


def diff_raw(baseline, candidate, config=None):
    """diff_entries over raw fixture dicts."""
    return diff_entries(BenchEntry(raw=baseline, index=0),
                        BenchEntry(raw=candidate, index=1), config)


def write_history(tmp_path, *entries):
    path = str(tmp_path / "bench.json")
    history = history_of(*entries)
    history.save(path)
    return path


def metric(diff, name):
    found = [m for m in diff.metrics if m.metric == name]
    assert found, "no metric %r in %s" % (name,
                                          [m.metric for m in diff.metrics])
    return found[0]


# -- the differ -------------------------------------------------------------

def test_injected_regression_gates_degraded():
    diff = diff_raw(entry_with(BASE), entry_with(SLOWER))
    assert diff.mode == ABSOLUTE
    assert diff.gate_verdict == DEGRADED
    assert not diff.ok
    throughput = metric(diff, "trials_per_sec")
    assert throughput.gate
    assert throughput.verdict == DEGRADED
    assert throughput.rel_change == pytest.approx(-1 / 6, abs=1e-3)
    assert throughput.p_value is not None
    assert throughput.p_value <= 0.05


def test_improvement_reads_improved_and_passes():
    diff = diff_raw(entry_with(BASE), entry_with(FASTER))
    assert diff.gate_verdict == IMPROVED
    assert diff.ok                          # only DEGRADED fails the gate


def test_identical_reruns_unchanged_across_seeds():
    """Re-measuring the same build must read UNCHANGED whatever seed
    the Monte Carlo fallback would use — at five repeats the test is
    exact, so the seed cannot enter at all."""
    for seed in (0, 1, 2001, 999983):
        diff = diff_raw(entry_with(BASE), entry_with(list(BASE)),
                            DiffConfig(seed=seed))
        assert diff.gate_verdict == UNCHANGED
        assert diff.ok
        assert [m.verdict for m in diff.metrics] \
            == [UNCHANGED] * len(diff.metrics)


def test_phase_rows_attribute_but_never_gate():
    """A phase shifting while throughput holds is attribution, not a
    regression: the simulate row reads DEGRADED, the diff passes."""
    baseline = entry_with(BASE)
    candidate = entry_with(list(BASE))
    candidate["campaign"]["optimized_phase_sample_seconds"] = {
        "decode": [0.1] * 5,
        "simulate": [value * 0.7 * 1.3 for value in BASE]}
    diff = diff_raw(baseline, candidate)
    simulate = metric(diff, "phase_simulate_seconds")
    assert simulate.verdict == DEGRADED
    assert not simulate.gate
    assert metric(diff, "trials_per_sec").verdict == UNCHANGED
    assert diff.gate_verdict == UNCHANGED
    assert diff.ok


def test_cross_host_refused_into_ratio_only():
    """Wall seconds from different machines are not comparable: the
    diff must drop every absolute metric, warn, and gate on the
    dimensionless speedup instead."""
    diff = diff_raw(entry_with(BASE, plat="host-a"),
                        entry_with(SLOWER, plat="host-b"))
    assert diff.mode == RATIO_ONLY
    assert any("hosts differ" in warning for warning in diff.warnings)
    assert [m.metric for m in diff.metrics] == ["speedup"]
    assert metric(diff, "speedup").gate
    # reference scaled with optimized, so the ratio held: no verdict
    # despite the 20% wall-clock difference the mode refused to judge.
    assert diff.gate_verdict == UNCHANGED


def test_cross_host_ratio_regression_still_gates():
    """The speedup ratio survives a host change — an optimization
    genuinely lost (ratio down 20%) fails even cross-host."""
    worse_ratio = entry_with(SLOWER, reference=[v * 4.0 for v in BASE],
                             plat="host-b")
    diff = diff_raw(entry_with(BASE, plat="host-a"), worse_ratio)
    assert diff.mode == RATIO_ONLY
    assert diff.gate_verdict == DEGRADED
    assert not diff.ok


def test_cross_spec_refused_into_ratio_only():
    quick_spec = {"name": "fixture-quick", "instructions": 60}
    diff = diff_raw(entry_with(BASE),
                        entry_with(BASE, spec=quick_spec))
    assert diff.mode == RATIO_ONLY
    assert any("specs differ" in warning for warning in diff.warnings)


def test_diff_refs_resolves_and_refuses_self_diff():
    history = history_of(entry_with(BASE), entry_with(SLOWER))
    diff = diff_refs(history, "HEAD~1", "latest")
    assert diff.baseline.index == 0 and diff.candidate.index == 1
    with pytest.raises(HistoryError, match="against itself"):
        diff_refs(history, "latest", 1)


def test_diff_as_dict_is_json_ready():
    diff = diff_raw(entry_with(BASE), entry_with(SLOWER))
    payload = json.loads(json.dumps(diff.as_dict()))
    assert payload["verdict"] == DEGRADED
    assert payload["ok"] is False
    assert payload["mode"] == ABSOLUTE
    assert {m["metric"] for m in payload["metrics"]} \
        >= {"trials_per_sec", "speedup"}


# -- the --check gate -------------------------------------------------------

def test_check_empty_and_single_entry_pass():
    assert check_history(history_of()) is None
    assert check_history(history_of(entry_with(BASE))) is None


def test_check_flags_latest_regression():
    check = check_history(history_of(entry_with(BASE),
                                     entry_with(SLOWER)))
    assert check is not None
    assert not check.ok


def test_check_baseline_skips_other_hosts():
    """The committed history changed hosts mid-stream; --check must
    reach past the foreign entry to the nearest same-host baseline
    and stay in absolute mode."""
    history = history_of(
        entry_with(BASE, plat="host-a",
                   generated="2026-08-01T00:00:00+0000"),
        entry_with(FASTER, plat="host-b",
                   generated="2026-08-02T00:00:00+0000"),
        entry_with(SLOWER, plat="host-a",
                   generated="2026-08-03T00:00:00+0000"))
    baseline = find_baseline(history, history[2])
    assert baseline is not None and baseline.index == 0
    check = check_history(history)
    assert check.mode == ABSOLUTE
    assert not check.ok


def test_check_falls_back_to_ratio_only_predecessor():
    history = history_of(entry_with(BASE, plat="host-a"),
                         entry_with(BASE, plat="host-b"))
    check = check_history(history)
    assert check.mode == RATIO_ONLY
    assert check.baseline.index == 0
    assert check.ok


# -- reports ----------------------------------------------------------------

def test_reports_render_verdicts_and_counts():
    history = history_of(
        entry_with(BASE, generated="2026-08-01T00:00:00+0000"),
        entry_with(SLOWER, generated="2026-08-02T00:00:00+0000",
                   note="regressed on purpose"))
    report = history_report(history)
    assert report["entries"][1]["vs_previous"]["verdict"] == DEGRADED
    assert "trials_per_sec" \
        in report["entries"][1]["vs_previous"]["degraded"]
    text = format_history_report(history)
    assert "degradations: 1" in text
    assert "regressed on purpose" in text
    diff_text = format_diff_report(check_history(history))
    assert "DEGRADED [gate]" in diff_text
    assert format_history_report(history_of()) == "bench history: empty"


# -- CLI end-to-end ---------------------------------------------------------

def test_cli_diff_detects_regression(tmp_path, capsys):
    path = write_history(tmp_path, entry_with(BASE),
                         entry_with(SLOWER))
    assert main(["bench", "--out", path, "--diff", "HEAD~1",
                 "latest"]) == 1
    out = capsys.readouterr().out
    assert "trials_per_sec" in out
    assert "DEGRADED" in out


def test_cli_diff_unchanged_for_identical_rerun(tmp_path, capsys):
    path = write_history(tmp_path, entry_with(BASE),
                         entry_with(list(BASE)))
    assert main(["bench", "--out", path, "--diff", "0", "1"]) == 0
    assert "verdict: UNCHANGED" in capsys.readouterr().out


def test_cli_diff_json_payload(tmp_path, capsys):
    path = write_history(tmp_path, entry_with(BASE),
                         entry_with(FASTER))
    assert main(["bench", "--out", path, "--diff", "0", "latest",
                 "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["verdict"] == IMPROVED


def test_cli_check_exit_codes(tmp_path, capsys):
    regressed = write_history(tmp_path, entry_with(BASE),
                              entry_with(SLOWER))
    assert main(["bench", "--out", regressed, "--check"]) == 1
    assert "FAILED" in capsys.readouterr().out
    improved = str(tmp_path / "improved.json")
    history_of(entry_with(BASE), entry_with(FASTER)).save(improved)
    assert main(["bench", "--out", improved, "--check"]) == 0
    assert "bench check: OK" in capsys.readouterr().out


def test_cli_check_empty_history_passes(tmp_path, capsys):
    missing = str(tmp_path / "missing.json")
    assert main(["bench", "--out", missing, "--check"]) == 0
    assert "nothing to regress against" in capsys.readouterr().out


def test_cli_check_honors_alpha_and_min_effect(tmp_path, capsys):
    """A 20% regression passes a gate told to ignore anything under
    30% — the knobs must actually reach the differ."""
    path = write_history(tmp_path, entry_with(BASE),
                         entry_with(SLOWER))
    assert main(["bench", "--out", path, "--check",
                 "--min-effect", "0.3"]) == 0
    capsys.readouterr()


def test_cli_history_report(tmp_path, capsys):
    path = write_history(
        tmp_path,
        entry_with(BASE, generated="2026-08-01T00:00:00+0000"),
        entry_with(BASE, plat="other-host",
                   generated="2026-08-02T00:00:00+0000"))
    assert main(["bench", "--out", path, "--history"]) == 0
    out = capsys.readouterr().out
    assert "bench history: 2 entries" in out
    assert "(ratio)" in out                 # host change annotated


def test_cli_modes_are_mutually_exclusive(tmp_path):
    path = write_history(tmp_path, entry_with(BASE))
    with pytest.raises(SystemExit, match="mutually exclusive"):
        main(["bench", "--out", path, "--check", "--history"])


def test_cli_surfaces_history_errors_cleanly(tmp_path):
    torn = tmp_path / "torn.json"
    torn.write_text('{"version": 3,', encoding="utf-8")
    with pytest.raises(SystemExit, match="not valid JSON"):
        main(["bench", "--out", str(torn), "--check"])
    path = write_history(tmp_path, entry_with(BASE))
    with pytest.raises(SystemExit, match="no entry"):
        main(["bench", "--out", path, "--diff", "0", "9"])


def test_cli_check_against_committed_history(capsys):
    """The real committed BENCH_simulator.json must pass --check — CI
    runs exactly this after every merge."""
    assert main(["bench", "--out", COMMITTED, "--check"]) == 0
    capsys.readouterr()
