"""Load/store-queue disambiguation and forwarding tests."""

import pytest

from repro.core.rob import Group, RobEntry
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.uarch.lsq import LoadStoreQueue


def _mem_group(gseq, op, addr=None, store_val=None):
    if op == Op.LW:
        inst = Instruction(op, rd=1, rs1=2, imm=0)
    else:
        inst = Instruction(op, rs1=2, rs2=3, imm=0)
    group = Group(gseq, pc=gseq, inst=inst, pred_npc=gseq + 1)
    entry = RobEntry(gseq, gseq, group, 0)
    group.copies.append(entry)
    if addr is not None:
        entry.addr = addr
        entry.agen_done = True
    entry.store_val = store_val
    return group


class TestOrdering:
    def test_commit_order_enforced(self):
        lsq = LoadStoreQueue(8)
        a = _mem_group(0, Op.SW, addr=4, store_val=1)
        b = _mem_group(1, Op.SW, addr=8, store_val=2)
        lsq.insert(a)
        lsq.insert(b)
        with pytest.raises(AssertionError):
            lsq.remove_committed(b)
        lsq.remove_committed(a)
        lsq.remove_committed(b)
        assert len(lsq) == 0

    def test_squash_younger(self):
        lsq = LoadStoreQueue(8)
        for gseq in range(4):
            lsq.insert(_mem_group(gseq, Op.SW, addr=gseq))
        lsq.squash_younger(1)
        assert [g.gseq for g in lsq] == [0, 1]

    def test_capacity(self):
        lsq = LoadStoreQueue(2)
        lsq.insert(_mem_group(0, Op.LW, addr=0))
        assert not lsq.full
        lsq.insert(_mem_group(1, Op.LW, addr=4))
        assert lsq.full


class TestDisambiguation:
    def test_no_older_stores_allows_access(self):
        lsq = LoadStoreQueue(8)
        load = _mem_group(0, Op.LW, addr=4)
        lsq.insert(load)
        assert lsq.load_status(load) == ("access", None)

    def test_unknown_store_address_blocks(self):
        lsq = LoadStoreQueue(8)
        store = _mem_group(0, Op.SW)  # address not computed yet
        load = _mem_group(1, Op.LW, addr=4)
        lsq.insert(store)
        lsq.insert(load)
        assert lsq.load_status(load)[0] == "blocked"

    def test_non_matching_store_allows_access(self):
        lsq = LoadStoreQueue(8)
        store = _mem_group(0, Op.SW, addr=8, store_val=7)
        load = _mem_group(1, Op.LW, addr=4)
        lsq.insert(store)
        lsq.insert(load)
        assert lsq.load_status(load) == ("access", None)

    def test_matching_store_with_data_forwards(self):
        lsq = LoadStoreQueue(8)
        store = _mem_group(0, Op.SW, addr=4, store_val=99)
        load = _mem_group(1, Op.LW, addr=4)
        lsq.insert(store)
        lsq.insert(load)
        status, source = lsq.load_status(load)
        assert status == "forward" and source is store

    def test_matching_store_without_data_blocks(self):
        lsq = LoadStoreQueue(8)
        store = _mem_group(0, Op.SW, addr=4)
        store.copies[0].agen_done = True  # address known, data missing
        load = _mem_group(1, Op.LW, addr=4)
        lsq.insert(store)
        lsq.insert(load)
        assert lsq.load_status(load)[0] == "blocked"

    def test_youngest_matching_store_wins(self):
        lsq = LoadStoreQueue(8)
        old = _mem_group(0, Op.SW, addr=4, store_val=1)
        new = _mem_group(1, Op.SW, addr=4, store_val=2)
        load = _mem_group(2, Op.LW, addr=4)
        for group in (old, new, load):
            lsq.insert(group)
        status, source = lsq.load_status(load)
        assert status == "forward" and source is new

    def test_younger_stores_ignored(self):
        lsq = LoadStoreQueue(8)
        load = _mem_group(0, Op.LW, addr=4)
        younger = _mem_group(1, Op.SW, addr=4, store_val=9)
        lsq.insert(load)
        lsq.insert(younger)
        assert lsq.load_status(load) == ("access", None)
