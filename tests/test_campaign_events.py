"""CampaignEvent wire serialization and the service's event log.

Satellite of the campaign-service PR: ``CampaignEvent.to_dict`` /
``from_dict`` must round-trip every event shape the session and the
orchestrator emit — the typed event stream is now the SSE wire
protocol, so a lossy serialization would silently corrupt live
progress for every service client.
"""

import json
import os

import pytest

from repro.campaign import (CAMPAIGN_FINISHED, CELL_CONVERGED,
                            CELL_FINISHED, CampaignEvent,
                            CampaignSession, CampaignSpec,
                            TRIAL_FINISHED, TRIAL_STARTED)
from repro.errors import ConfigError
from repro.service.events import (EventLog, JOB_EVENT_KINDS, job_event)
from repro.service.jobs import Job


def tiny_spec():
    return CampaignSpec(name="events", workloads=("gcc",),
                        models=("SS-1",), rates_per_million=(0.0,),
                        replicates=1, instructions=200)


EXAMPLES = [
    CampaignEvent(kind=TRIAL_STARTED, done=0, total=4,
                  trial={"workload": "gcc", "model": "SS-1"}),
    CampaignEvent(kind=TRIAL_FINISHED, done=1, total=4,
                  trial={"workload": "gcc", "model": "SS-1"},
                  record={"key": "abc", "outcome": "masked"}),
    CampaignEvent(kind=CELL_FINISHED, done=2, total=4,
                  cell=("gcc", "SS-1", "", 0.0, "default", "")),
    CampaignEvent(kind=CELL_CONVERGED, done=3, total=4,
                  cell=("gcc", "SS-2", "rob64", 3000.0, "default",
                        "pc")),
    CampaignEvent(kind="shard_started", done=0, total=8, shard=1),
    CampaignEvent(kind=CAMPAIGN_FINISHED, done=4, total=4),
]


class TestRoundTrip:
    @pytest.mark.parametrize("event", EXAMPLES,
                             ids=[event.kind for event in EXAMPLES])
    def test_round_trip_preserves_every_field(self, event):
        clone = CampaignEvent.from_dict(event.to_dict())
        assert clone == event

    @pytest.mark.parametrize("event", EXAMPLES,
                             ids=[event.kind for event in EXAMPLES])
    def test_wire_form_is_json_safe(self, event):
        wire = json.dumps(event.to_dict(), sort_keys=True)
        assert CampaignEvent.from_dict(json.loads(wire)) == event

    def test_cell_tuple_survives_json(self):
        # JSON turns tuples into lists; from_dict must restore the
        # tuple or cell-keyed comparisons downstream break.
        event = EXAMPLES[2]
        decoded = json.loads(json.dumps(event.to_dict()))
        assert isinstance(decoded["cell"], list)
        assert CampaignEvent.from_dict(decoded).cell == event.cell

    def test_optional_fields_are_omitted_from_the_wire(self):
        wire = EXAMPLES[-1].to_dict()
        assert set(wire) == {"kind", "done", "total"}

    def test_unknown_fields_are_rejected(self):
        wire = EXAMPLES[0].to_dict()
        wire["surprise"] = 1
        with pytest.raises(ConfigError, match="surprise"):
            CampaignEvent.from_dict(wire)

    def test_live_session_events_round_trip(self, tmp_path):
        seen = []
        session = CampaignSession(
            tiny_spec(), store=str(tmp_path / "s.jsonl"),
            listeners=(seen.append,))
        session.run()
        assert seen
        for event in seen:
            assert CampaignEvent.from_dict(
                json.loads(json.dumps(event.to_dict()))) == event


class TestEventLog:
    def log(self, tmp_path):
        return EventLog(str(tmp_path / "events.jsonl"))

    def test_append_assigns_monotonic_seq(self, tmp_path):
        log = self.log(tmp_path)
        seqs = [log.append(EXAMPLES[0]), log.append(EXAMPLES[1]),
                log.append({"kind": "job_queued", "job": "j1"})]
        assert seqs == [1, 2, 3]
        assert [seq for seq, _ in log.read()] == [1, 2, 3]

    def test_read_after_seq_filters(self, tmp_path):
        log = self.log(tmp_path)
        for event in EXAMPLES[:3]:
            log.append(event)
        assert [seq for seq, _ in log.read(after_seq=2)] == [3]

    def test_seq_continues_across_writers(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        EventLog(path).append(EXAMPLES[0])
        # A fresh appender (service restart) continues the sequence.
        assert EventLog(path).append(EXAMPLES[1]) == 2

    def test_torn_tail_is_skipped_and_healed(self, tmp_path):
        log = self.log(tmp_path)
        log.append(EXAMPLES[0])
        with open(log.path, "a") as handle:
            handle.write('{"kind": "trial_fin')   # SIGKILL mid-write
        log2 = EventLog(log.path)
        assert [seq for seq, _ in log2.read()] == [1]
        assert log2.append(EXAMPLES[1]) == 2
        events = log2.read()
        assert [seq for seq, _ in events] == [1, 2]
        assert events[1][1]["kind"] == EXAMPLES[1].kind

    def test_torn_tail_heals_at_every_byte_offset(self, tmp_path):
        """Exhaustive SIGKILL simulation: truncate the log inside its
        final record at every byte offset.  Every residue must load
        cleanly (earlier events intact, the fragment skipped), and a
        fresh appender must quarantine the fragment and continue the
        sequence."""
        log = self.log(tmp_path)
        for event in EXAMPLES[:3]:
            log.append(event)
        with open(log.path, "rb") as handle:
            blob = handle.read()
        start = blob.rstrip(b"\n").rfind(b"\n") + 1
        for cut in range(start, len(blob)):
            with open(log.path, "wb") as handle:
                handle.write(blob[:cut])
            healed = EventLog(log.path)
            # cut == len(blob) - 1 drops only the trailing newline:
            # the final record is still one intact JSON line.
            expected = [1, 2, 3] if cut == len(blob) - 1 else [1, 2]
            assert [seq for seq, _ in healed.read()] == expected
            appended = healed.append(EXAMPLES[3])
            assert appended == expected[-1] + 1
            assert [seq for seq, _ in EventLog(log.path).read()] \
                == expected + [appended]

    def test_campaign_event_payload_survives(self, tmp_path):
        log = self.log(tmp_path)
        log.append(EXAMPLES[3])
        _seq, payload = log.read()[0]
        restored = CampaignEvent.from_dict(
            {key: value for key, value in payload.items()
             if key not in ("seq", "ts")})
        assert restored == EXAMPLES[3]

    def test_read_missing_file_is_empty(self, tmp_path):
        assert self.log(tmp_path).read() == []


class TestJobEvents:
    def test_job_event_carries_lifecycle_fields(self):
        job = Job(id="job-1", tenant="alice", spec=tiny_spec())
        payload = job_event("job_queued", job)
        assert payload["kind"] in JOB_EVENT_KINDS
        assert payload["job"] == "job-1"
        assert payload["tenant"] == "alice"
        assert payload["state"] == "queued"
        assert "error" not in payload

    def test_job_event_includes_error_when_set(self):
        job = Job(id="job-2", tenant="bob", spec=tiny_spec(),
                  state="failed", error="boom")
        assert job_event("job_failed", job)["error"] == "boom"
