"""Per-process trial caches are bounded and observable.

PR-9 put every per-process cache on the spec -> trial -> record path
behind an LRU bound with hit/miss/eviction counters: the workload
program cache, the golden-trace cache, and the cell-checkpoint store.
These tests pin the eviction behaviour, the counter arithmetic, and
the reporting contract — counters reach ``stats.extras`` for
observability but never a persisted record.
"""

import pytest

import repro.program.cache as program_cache
from repro.campaign.checkpoint import (CheckpointStore,
                                       checkpoint_store_stats,
                                       clear_checkpoints, get_store)
from repro.campaign.golden import (cached_trace, clear_trace_cache,
                                   trace_cache_stats)
from repro.campaign.outcome import cache_stats, clear_result_caches, \
    run_trial
from repro.campaign.spec import CampaignSpec
from repro.program.cache import (cached_workload, clear_caches,
                                 workload_cache_stats)
from repro.workloads.generator import build_workload


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_result_caches()
    clear_trace_cache()
    clear_caches()
    yield
    clear_result_caches()
    clear_trace_cache()
    clear_caches()


class TestWorkloadCache:
    def test_hit_and_miss_counters(self):
        cached_workload("gcc")
        cached_workload("gcc")
        stats = workload_cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1
        assert stats["size"] == 1
        assert stats["evictions"] == 0

    def test_lru_eviction_over_limit(self, monkeypatch):
        monkeypatch.setattr(program_cache, "_WORKLOAD_CACHE_LIMIT", 2)
        cached_workload("gcc", seed=1)
        cached_workload("gcc", seed=2)
        cached_workload("gcc", seed=1)      # refresh 1: 2 is now LRU
        cached_workload("gcc", seed=3)      # evicts 2
        stats = workload_cache_stats()
        assert stats["evictions"] == 1
        assert stats["size"] == 2
        hits = stats["hits"]
        cached_workload("gcc", seed=1)      # survived the eviction
        assert workload_cache_stats()["hits"] == hits + 1
        cached_workload("gcc", seed=2)      # was evicted: a miss
        assert workload_cache_stats()["misses"] == 4

    def test_clear_resets_counters(self):
        cached_workload("gcc")
        clear_caches()
        stats = workload_cache_stats()
        assert stats == {"hits": 0, "misses": 0, "evictions": 0,
                         "size": 0, "limit": stats["limit"]}


class TestTraceCache:
    def test_eviction_counter_past_limit(self):
        program = build_workload("gcc")
        limit = trace_cache_stats()["limit"]
        for index in range(limit + 2):
            cached_trace(("bound-probe", index), program)
        stats = trace_cache_stats()
        assert stats["size"] == limit
        assert stats["evictions"] == 2
        assert stats["misses"] == limit + 2
        cached_trace(("bound-probe", limit + 1), program)
        assert trace_cache_stats()["hits"] == 1


class TestCheckpointStore:
    def test_lru_eviction_and_counters(self):
        store = CheckpointStore(limit=2)
        store.put("a", "cell-a")
        store.put("b", "cell-b")
        assert store.get("a") == "cell-a"   # refresh: b is now LRU
        store.put("c", "cell-c")            # evicts b
        assert store.get("b") is None
        assert store.get("c") == "cell-c"
        stats = store.stats()
        assert stats["evictions"] == 1
        assert stats["hits"] == 2
        assert stats["misses"] == 1
        assert stats["size"] == 2

    def test_invalidate_drops_one_cell(self):
        store = CheckpointStore(limit=4)
        store.put("a", "cell-a")
        store.invalidate("a")
        store.invalidate("never-there")     # never raises
        assert store.get("a") is None
        assert len(store) == 0

    def test_module_store_clear(self):
        get_store().put("probe", "cell")
        assert checkpoint_store_stats()["size"] == 1
        clear_checkpoints()
        stats = checkpoint_store_stats()
        assert stats["size"] == 0
        assert stats["hits"] == stats["misses"] \
            == stats["evictions"] == 0


class TestReporting:
    def test_cache_stats_sections_and_keys(self):
        stats = cache_stats()
        assert set(stats) == {"golden_trace", "workload", "checkpoints"}
        for section in stats.values():
            assert {"hits", "misses", "evictions", "size",
                    "limit"} <= set(section)

    def test_counters_never_reach_records(self):
        spec = CampaignSpec(workloads=("gcc",), models=("SS-2",),
                            rates_per_million=(3_000.0,),
                            replicates=1, instructions=300)
        trial = next(iter(spec.trials()))
        record = run_trial(trial, checkpointing=True).to_record()
        assert "cache_stats" not in str(record)
