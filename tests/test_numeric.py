"""Numeric helper tests, including property-based wrap-around checks."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.functional.numeric import (as_float, as_int, bits_to_float,
                                      flip_float_bit, flip_int_bit,
                                      float_to_bits, s64, u64,
                                      values_equal)

INT64_MIN = -(1 << 63)
INT64_MAX = (1 << 63) - 1


class TestWrap:
    @given(st.integers())
    def test_s64_always_in_range(self, value):
        wrapped = s64(value)
        assert INT64_MIN <= wrapped <= INT64_MAX

    @given(st.integers())
    def test_s64_idempotent(self, value):
        assert s64(s64(value)) == s64(value)

    @given(st.integers(min_value=INT64_MIN, max_value=INT64_MAX))
    def test_s64_identity_in_range(self, value):
        assert s64(value) == value

    def test_overflow_wraps(self):
        assert s64(INT64_MAX + 1) == INT64_MIN
        assert s64(INT64_MIN - 1) == INT64_MAX

    @given(st.integers(min_value=INT64_MIN, max_value=INT64_MAX))
    def test_u64_round_trip(self, value):
        assert s64(u64(value)) == value


class TestCoercion:
    def test_as_int_truncates_floats(self):
        assert as_int(3.9) == 3
        assert as_int(-3.9) == -3

    def test_as_int_handles_nan_inf(self):
        assert as_int(math.nan) == 0
        assert as_int(math.inf) == 0

    def test_as_float_of_int(self):
        assert as_float(3) == 3.0

    def test_as_int_rejects_strings(self):
        with pytest.raises(TypeError):
            as_int("nope")


class TestBitManipulation:
    @given(st.floats(allow_nan=False))
    def test_float_bits_round_trip(self, value):
        assert bits_to_float(float_to_bits(value)) == value

    @given(st.integers(min_value=INT64_MIN, max_value=INT64_MAX),
           st.integers(min_value=0, max_value=63))
    def test_int_flip_is_involution(self, value, bit):
        assert flip_int_bit(flip_int_bit(value, bit), bit) == value

    @given(st.integers(min_value=INT64_MIN, max_value=INT64_MAX),
           st.integers(min_value=0, max_value=63))
    def test_int_flip_changes_value(self, value, bit):
        assert flip_int_bit(value, bit) != value

    @given(st.floats(allow_nan=False, allow_infinity=False),
           st.integers(min_value=0, max_value=62))
    def test_float_flip_changes_representation(self, value, bit):
        flipped = flip_float_bit(value, bit)
        assert float_to_bits(flipped) != float_to_bits(value)


class TestValuesEqual:
    def test_exact_ints(self):
        assert values_equal(5, 5)
        assert not values_equal(5, 6)

    def test_nan_equals_nan(self):
        assert values_equal(math.nan, math.nan)

    def test_signed_zero_distinguished(self):
        assert not values_equal(0.0, -0.0)
        assert values_equal(-0.0, -0.0)

    def test_type_mismatch_is_unequal(self):
        assert not values_equal(1, 1.0)

    @given(st.floats(allow_nan=False))
    def test_reflexive_on_floats(self, value):
        assert values_equal(value, value)
