"""Branch prediction substrate tests."""

import pytest

from repro.branch.bimodal import BimodalPredictor
from repro.branch.btb import BranchTargetBuffer
from repro.branch.combined import CombinedPredictor
from repro.branch.ras import ReturnAddressStack
from repro.branch.static import AlwaysNotTaken, AlwaysTaken
from repro.branch.twolevel import TwoLevelPredictor
from repro.errors import ConfigError


class TestBimodal:
    def test_initial_prediction_weakly_taken(self):
        assert BimodalPredictor(16).predict(0)

    def test_learns_not_taken(self):
        predictor = BimodalPredictor(16)
        predictor.update(0, False)
        predictor.update(0, False)
        assert not predictor.predict(0)

    def test_hysteresis(self):
        predictor = BimodalPredictor(16)
        for _ in range(4):
            predictor.update(0, True)
        predictor.update(0, False)  # one anomaly
        assert predictor.predict(0)

    def test_aliasing_by_index(self):
        predictor = BimodalPredictor(16)
        for _ in range(2):
            predictor.update(0, False)
        assert not predictor.predict(16)  # same table slot
        assert predictor.predict(1)

    def test_size_must_be_power_of_two(self):
        with pytest.raises(ConfigError):
            BimodalPredictor(1000)

    def test_reset(self):
        predictor = BimodalPredictor(16)
        predictor.update(0, False)
        predictor.update(0, False)
        predictor.reset()
        assert predictor.predict(0)


class TestTwoLevel:
    def test_learns_alternating_pattern(self):
        predictor = TwoLevelPredictor(l1_size=1, l2_size=64,
                                      history_bits=4, use_xor=False)
        outcome = True
        for _ in range(64):
            predictor.update(0, outcome)
            outcome = not outcome
        hits = 0
        for _ in range(20):
            if predictor.predict(0) == outcome:
                hits += 1
            predictor.update(0, outcome)
            outcome = not outcome
        assert hits == 20

    def test_learns_short_period_pattern(self):
        predictor = TwoLevelPredictor(l1_size=1, l2_size=256,
                                      history_bits=8, use_xor=False)
        pattern = [True, True, False]
        for i in range(300):
            predictor.update(0, pattern[i % 3])
        hits = 0
        for i in range(30):
            if predictor.predict(0) == pattern[i % 3]:
                hits += 1
            predictor.update(0, pattern[i % 3])
        assert hits >= 28

    def test_xor_mixes_pc(self):
        plain = TwoLevelPredictor(use_xor=False)
        mixed = TwoLevelPredictor(use_xor=True)
        assert plain._l2_index(0b1010) != mixed._l2_index(0b1010) or \
            plain._histories != mixed._histories  # xor changes indexing

    def test_history_bits_validated(self):
        with pytest.raises(ValueError):
            TwoLevelPredictor(history_bits=0)


class TestCombined:
    def test_chooser_prefers_better_component(self):
        predictor = CombinedPredictor(BimodalPredictor(16),
                                      TwoLevelPredictor(l1_size=1,
                                                        l2_size=64,
                                                        history_bits=4,
                                                        use_xor=False),
                                      meta_size=16)
        # An alternating pattern: the two-level learns it, bimodal can't.
        outcome = True
        for _ in range(100):
            predictor.update(0, outcome)
            outcome = not outcome
        # Over the next 20 branches, accuracy should be near-perfect.
        correct = 0
        for _ in range(20):
            if predictor.predict(0) == outcome:
                correct += 1
            predictor.update(0, outcome)
            outcome = not outcome
        assert correct >= 19

    def test_reset_clears_everything(self):
        predictor = CombinedPredictor(meta_size=16)
        predictor.update(0, False)
        predictor.reset()
        assert predictor.lookups == 0


class TestStatic:
    def test_always_taken(self):
        assert AlwaysTaken().predict(123)

    def test_always_not_taken(self):
        assert not AlwaysNotTaken().predict(123)


class TestBtb:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(sets=16, assoc=2)
        assert btb.lookup(5) is None
        btb.update(5, 99)
        assert btb.lookup(5) == 99

    def test_lru_within_set(self):
        btb = BranchTargetBuffer(sets=1, assoc=2)
        btb.update(0, 10)
        btb.update(1, 11)
        btb.lookup(0)        # refresh 0
        btb.update(2, 12)    # evicts 1
        assert btb.lookup(0) == 10
        assert btb.lookup(1) is None

    def test_update_replaces_target(self):
        btb = BranchTargetBuffer(sets=4, assoc=1)
        btb.update(0, 10)
        btb.update(0, 20)
        assert btb.lookup(0) == 20

    def test_hit_statistics(self):
        btb = BranchTargetBuffer(sets=4, assoc=1)
        btb.lookup(0)
        btb.update(0, 5)
        btb.lookup(0)
        assert btb.lookups == 2 and btb.hits == 1


class TestRas:
    def test_push_pop(self):
        ras = ReturnAddressStack(4)
        ras.push(10)
        ras.push(20)
        assert ras.pop() == 20
        assert ras.pop() == 10
        assert ras.pop() is None

    def test_overflow_wraps_oldest(self):
        ras = ReturnAddressStack(2)
        for address in (1, 2, 3):
            ras.push(address)
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None  # 1 was overwritten

    def test_snapshot_restore(self):
        ras = ReturnAddressStack(4)
        ras.push(10)
        snap = ras.snapshot()
        ras.push(20)
        ras.pop()
        ras.pop()
        ras.restore(snap)
        assert ras.pop() == 10

    def test_clear(self):
        ras = ReturnAddressStack(4)
        ras.push(1)
        ras.clear()
        assert ras.pop() is None

    def test_depth_validated(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(0)
