"""The pending-load list is program-ordered by construction.

The reference engine re-sorted ``pending_loads`` every cycle; the
optimized engine maintains gseq order at insertion (binary insert on
out-of-order address-generation completions) and never sorts.  These
tests pin both the insertion helper and the live invariant during
fault-heavy simulation."""

import pytest

from repro.core.faults import FaultConfig
from repro.models.presets import get_model
from repro.uarch.processor import Processor
from repro.workloads.generator import build_workload


class _FakeGroup:
    def __init__(self, gseq):
        self.gseq = gseq

    def __repr__(self):
        return "<g%d>" % self.gseq


class TestAppendPendingLoad:
    def _processor(self):
        model = get_model("SS-1")
        return Processor(build_workload("gcc"), config=model.config,
                         ft=model.ft)

    @pytest.mark.parametrize("arrivals", [
        [1, 2, 3, 4],
        [4, 3, 2, 1],
        [2, 9, 4, 1, 7, 3, 8, 0, 6, 5],
        [5],
        [3, 3_000, 1_500, 2, 2_999],
    ])
    def test_insertions_keep_gseq_order(self, arrivals):
        processor = self._processor()
        for gseq in arrivals:
            processor._append_pending_load(_FakeGroup(gseq))
        observed = [g.gseq for g in processor.pending_loads]
        assert observed == sorted(arrivals)

    def test_in_order_arrivals_append_without_insert(self):
        processor = self._processor()
        for gseq in range(50):
            processor._append_pending_load(_FakeGroup(gseq))
        assert [g.gseq for g in processor.pending_loads] \
            == list(range(50))


class _OrderAuditingProcessor(Processor):
    """Asserts the program-order invariant at every scheduling point."""

    audits = 0

    def _progress_pending_loads(self, cycle):
        gseqs = [group.gseq for group in self.pending_loads]
        assert gseqs == sorted(gseqs), \
            "pending_loads out of program order at cycle %d: %r" \
            % (cycle, gseqs)
        type(self).audits += 1
        super()._progress_pending_loads(cycle)


@pytest.mark.parametrize("rate", [0.0, 20_000.0])
def test_invariant_holds_during_simulation(rate):
    """Loads progress in program order without any per-cycle sort."""
    _OrderAuditingProcessor.audits = 0
    model = get_model("SS-2")
    fault_config = None
    if rate:
        fault_config = FaultConfig(rate_per_million=rate, seed=7)
    processor = _OrderAuditingProcessor(
        build_workload("gcc"), config=model.config, ft=model.ft,
        fault_config=fault_config)
    processor.run(max_instructions=1_500, max_cycles=120_000)
    assert _OrderAuditingProcessor.audits > 0
    assert processor.stats.loads_executed > 0
