"""Machine-model preset and scaling tests."""

import math

import pytest

from repro.models.presets import (FIGURE5_MODELS, get_model, ss1, ss2,
                                  ss3, static2)
from repro.models.scaling import (INFINITE_FU, INFINITE_ROB,
                                  factor_for_label,
                                  scale_functional_units, scale_window)


class TestPresets:
    def test_ss1_is_unprotected_table1(self):
        model = ss1()
        assert model.redundancy == 1
        assert model.config.rob_size == 128
        assert model.config.int_alu == 4

    def test_ss2_same_hardware_dual_mode(self):
        base, redundant = ss1(), ss2()
        assert redundant.redundancy == 2
        # Same physical datapath: only the mode differs.
        for field in ("fetch_width", "rob_size", "lsq_size", "int_alu",
                      "int_mult", "fp_add", "fp_mult", "mem_ports"):
            assert getattr(redundant.config, field) == \
                getattr(base.config, field)

    def test_ss3_rob_multiple_of_three(self):
        model = ss3()
        assert model.redundancy == 3
        assert model.config.rob_size % 3 == 0
        assert model.ft.majority_election

    def test_ss3_rewind_variant(self):
        model = get_model("ss-3-rewind")
        assert model.redundancy == 3
        assert not model.ft.majority_election

    def test_static2_halves_resources(self):
        half, full = static2().config, ss1().config
        assert half.fetch_width == full.fetch_width // 2
        assert half.rob_size == full.rob_size // 2
        assert half.lsq_size == full.lsq_size // 2
        assert half.int_alu == full.int_alu // 2
        assert half.mem_ports == full.mem_ports // 2

    def test_static2_keeps_caches_and_predictor(self):
        half, full = static2().config, ss1().config
        assert half.hierarchy == full.hierarchy
        assert half.branch == full.branch

    def test_static2_keeps_full_fp_mult_div(self):
        """The paper's footnote 3: each pipe has an FPMult/Div unit."""
        assert static2().config.fp_mult == ss1().config.fp_mult == 1

    def test_get_model_names(self):
        for name in FIGURE5_MODELS:
            assert get_model(name).name == name
        with pytest.raises(KeyError):
            get_model("cray-1")

    def test_overrides_pass_through(self):
        model = ss2(mem_size_words=1 << 12)
        assert model.config.mem_size_words == 1 << 12


class TestScaling:
    def test_half_fu(self):
        config = scale_functional_units(ss1().config, 0.5)
        assert config.int_alu == 2
        assert config.fp_mult == 1  # floor at 1 unit

    def test_double_fu(self):
        config = scale_functional_units(ss1().config, 2)
        assert config.int_alu == 8
        assert config.fp_mult == 2

    def test_infinite_fu(self):
        config = scale_functional_units(ss1().config, math.inf)
        assert config.int_alu == INFINITE_FU

    def test_window_scaling(self):
        config = scale_window(ss1().config, 0.5)
        assert config.rob_size == 64
        assert config.lsq_size == 32

    def test_window_infinite(self):
        config = scale_window(ss1().config, math.inf)
        assert config.rob_size == INFINITE_ROB

    def test_window_stays_even(self):
        config = scale_window(ss1().config.derive(rob_size=10), 0.5)
        assert config.rob_size % 2 == 0

    def test_factor_labels(self):
        assert factor_for_label("0.5x") == 0.5
        assert factor_for_label("2x") == 2.0
        assert math.isinf(factor_for_label("inf"))
        with pytest.raises(ValueError):
            factor_for_label("huge")

    def test_scaled_names_distinct(self):
        config = ss1().config
        assert scale_functional_units(config, 2).name != config.name
