"""Campaign API v2: CampaignSession facade, ExecutionOptions, typed
events, store-backend equivalence and shard-aware partitioning.

The heart of this file is the acceptance matrix: one 64-trial spec run
through the JSONL, SQLite and sharded backends — directly, and as
``shard(0,2)`` + ``shard(1,2)`` halves merged back together — must
produce byte-identical records and identical aggregate tables in every
combination.
"""

import json

import pytest

from repro.campaign import (CAMPAIGN_FINISHED, CELL_FINISHED,
                            TRIAL_FINISHED, TRIAL_STARTED,
                            CampaignSession, CampaignSpec,
                            ExecutionOptions, JSONLStore,
                            ShardedJSONLStore, SQLiteStore,
                            cells_to_json, merge_stores, run_campaign)
from repro.errors import ConfigError

#: The acceptance-criteria grid: 1 workload x 2 models x 2 rates x 16
#: replicates = 64 trials, half of them fault-free (cheap via result
#: reuse), half at a rate high enough to exercise every outcome class.
SPEC64 = CampaignSpec(
    name="api-backend-equivalence",
    workloads=("gcc",),
    models=("SS-1", "SS-2"),
    rates_per_million=(0.0, 20_000.0),
    replicates=16,
    instructions=250)


def canonical(records):
    """Byte representation used for record-identity assertions."""
    return json.dumps(records, sort_keys=True)


@pytest.fixture(scope="module")
def baseline():
    """The unsharded single-store run every equivalence test compares
    against (module-scoped: the suite re-runs the grid per backend, not
    per test)."""
    session = CampaignSession(SPEC64)
    result = session.run()
    assert len(result.records) == 64
    return {"records": result.records,
            "records_json": canonical(result.records),
            "cells_json": cells_to_json(session.aggregate())}


def small_spec(**overrides):
    kwargs = dict(workloads=("gcc",), models=("SS-2",),
                  rates_per_million=(0.0, 20_000.0), replicates=2,
                  instructions=300)
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


class TestExecutionOptions:
    def test_defaults(self):
        options = ExecutionOptions()
        assert options.simulator == "fast"
        assert options.workers == 1
        assert options.max_cycles is None

    def test_validation(self):
        with pytest.raises(ConfigError):
            ExecutionOptions(simulator="warp")
        with pytest.raises(ConfigError):
            ExecutionOptions(workers=0)
        with pytest.raises(ConfigError):
            ExecutionOptions(workers=1.5)
        with pytest.raises(ConfigError):
            ExecutionOptions(max_cycles=0)
        with pytest.raises(ConfigError):
            ExecutionOptions(max_cycles="lots")

    def test_trial_payload_shape(self):
        trial = next(small_spec().trials())
        payload = ExecutionOptions(simulator="reference",
                                   golden_cache=False).trial_payload(trial)
        assert payload["trial"] == trial.to_dict()
        assert payload["simulator"] == "reference"
        assert payload["golden_cache"] is False
        assert payload["reuse_faultfree"] is True


class TestSessionLifecycle:
    def test_run_and_aggregate(self, tmp_path):
        spec = small_spec()
        session = CampaignSession(spec, store=str(tmp_path / "r.jsonl"))
        result = session.run()
        assert [r["key"] for r in result.records] \
            == [t.key for t in spec.trials()]
        assert session.result is result
        cells = session.aggregate()
        assert sum(cell.n for cell in cells) == spec.grid_size

    def test_store_url_and_instance_equivalent(self, tmp_path):
        by_url = CampaignSession(small_spec(),
                                 store=str(tmp_path / "a.jsonl"))
        by_instance = CampaignSession(
            small_spec(), store=JSONLStore(str(tmp_path / "b.jsonl")))
        assert canonical(by_url.run().records) \
            == canonical(by_instance.run().records)

    def test_run_refuses_nonempty_store(self, tmp_path):
        store = JSONLStore(str(tmp_path / "r.jsonl"))
        store.append({"key": "stale", "outcome": "masked"})
        session = CampaignSession(small_spec(), store=store)
        with pytest.raises(ConfigError,
                           match="already holds completed trials"):
            session.run()

    def test_resume_requires_store(self):
        with pytest.raises(ConfigError, match="requires a result store"):
            CampaignSession(small_spec()).resume()

    def test_progress_snapshots(self, tmp_path):
        spec = small_spec()
        path = str(tmp_path / "r.jsonl")
        session = CampaignSession(spec, store=path)
        before = session.progress()
        assert (before.done, before.total) == (0, spec.grid_size)
        assert before.remaining == spec.grid_size
        session.run()
        after = session.progress()
        assert (after.done, after.total) == (spec.grid_size,
                                             spec.grid_size)
        assert after.fraction == 1.0
        # A fresh session over the same store sees the stored keys.
        resumed_view = CampaignSession(spec, store=path)
        assert resumed_view.progress().done == spec.grid_size

    def test_records_from_store_without_running(self, tmp_path):
        spec = small_spec()
        path = str(tmp_path / "r.jsonl")
        full = CampaignSession(spec, store=path).run()
        later = CampaignSession(spec, store=path)
        assert later.records() == full.records
        fresh = CampaignSession(spec)
        fresh.run()
        assert cells_to_json(later.aggregate()) \
            == cells_to_json(fresh.aggregate())

    def test_records_without_store_or_run_is_an_error(self):
        with pytest.raises(ConfigError, match="no result yet"):
            CampaignSession(small_spec()).records()

    def test_options_max_cycles_stamps_spec(self):
        spec = small_spec()
        session = CampaignSession(
            spec, options=ExecutionOptions(max_cycles=9_000))
        assert session.spec.max_cycles == 9_000
        assert all(t.max_cycles == 9_000
                   for t in session.spec.trials())

    def test_options_max_cycles_stamps_shard_views(self):
        # A CampaignShard delegates spec attributes, so the stamping
        # must go by concrete type, not duck typing.
        shard = small_spec().shard(0, 2)
        session = CampaignSession(
            shard, options=ExecutionOptions(max_cycles=9_000))
        assert session.spec.index == 0
        assert session.spec.total == 2
        assert all(t.max_cycles == 9_000
                   for t in session.spec.trials())

    def test_options_max_cycles_conflict_rejected(self):
        spec = small_spec(max_cycles=5_000)
        with pytest.raises(ConfigError, match="contradicts"):
            CampaignSession(spec,
                            options=ExecutionOptions(max_cycles=9_000))
        # An agreeing value is not a conflict.
        session = CampaignSession(
            spec, options=ExecutionOptions(max_cycles=5_000))
        assert session.spec is spec


class TestDeprecatedWrapper:
    def test_run_campaign_warns_and_matches_session(self):
        spec = small_spec()
        with pytest.warns(DeprecationWarning):
            old = run_campaign(spec)
        new = CampaignSession(spec).run()
        assert canonical(old.records) == canonical(new.records)

    def test_wrapper_progress_callback_semantics(self, tmp_path):
        spec = small_spec()
        seen = []
        with pytest.warns(DeprecationWarning):
            run_campaign(spec,
                         progress=lambda done, total, record:
                         seen.append((done, total, record["key"])))
        expected_keys = [t.key for t in spec.trials()]
        assert [done for done, _, _ in seen] \
            == list(range(1, spec.grid_size + 1))
        assert all(total == spec.grid_size for _, total, _ in seen)
        assert sorted(key for _, _, key in seen) == sorted(expected_keys)


class TestEvents:
    def test_serial_event_stream(self):
        spec = small_spec()
        events = []
        session = CampaignSession(spec, listeners=(events.append,))
        session.run()
        kinds = [event.kind for event in events]
        assert kinds.count(TRIAL_STARTED) == spec.grid_size
        assert kinds.count(TRIAL_FINISHED) == spec.grid_size
        # 1 workload x 1 model x 2 rates x 1 mix = 2 cells.
        assert kinds.count(CELL_FINISHED) == 2
        assert kinds.count(CAMPAIGN_FINISHED) == 1
        assert kinds[-1] == CAMPAIGN_FINISHED
        finished = [e for e in events if e.kind == TRIAL_FINISHED]
        assert [e.done for e in finished] \
            == list(range(1, spec.grid_size + 1))
        assert all(e.total == spec.grid_size for e in events)
        assert all(e.record["key"] == e.trial["key"] for e in finished)
        cells = {e.cell for e in events if e.kind == CELL_FINISHED}
        assert cells == {("gcc", "SS-2", "", 0.0, "default", ""),
                         ("gcc", "SS-2", "", 20_000.0, "default", "")}

    def test_subscribe_decorator_and_started_payload(self):
        spec = small_spec(replicates=1)
        session = CampaignSession(spec)
        started = []

        @session.subscribe
        def listener(event):
            if event.kind == TRIAL_STARTED:
                started.append(event.trial["key"])

        assert listener is not None
        session.run()
        assert started == [t.key for t in spec.trials()]

    def test_resumed_trials_fire_no_trial_events(self, tmp_path):
        spec = small_spec()
        path = str(tmp_path / "r.jsonl")
        full = CampaignSession(spec, store=path).run()
        half = len(full.records) // 2
        partial = JSONLStore(str(tmp_path / "partial.jsonl"))
        for record in full.records[:half]:
            partial.append(record)
        events = []
        resumed = CampaignSession(spec, store=partial,
                                  listeners=(events.append,))
        result = resumed.resume()
        assert result.skipped == half
        kinds = [event.kind for event in events]
        assert kinds.count(TRIAL_STARTED) == spec.grid_size - half
        assert kinds.count(TRIAL_FINISHED) == spec.grid_size - half
        assert kinds.count(CAMPAIGN_FINISHED) == 1
        # done still counts resumed trials: the stream ends at total.
        assert events[-1].done == spec.grid_size


@pytest.mark.parametrize("backend", ["jsonl", "sqlite", "sharded"])
class TestBackendEquivalence:
    """The acceptance criteria: all three backends, direct and via
    2-shard partitions merged back, agree byte-for-byte."""

    def make_store(self, backend, tmp_path, label):
        if backend == "jsonl":
            return JSONLStore(str(tmp_path / ("%s.jsonl" % label)))
        if backend == "sqlite":
            return SQLiteStore(str(tmp_path / ("%s.db" % label)))
        return ShardedJSONLStore(str(tmp_path / label), shards=4)

    def test_direct_run_matches_baseline(self, backend, tmp_path,
                                         baseline):
        store = self.make_store(backend, tmp_path, "direct")
        session = CampaignSession(SPEC64, store=store)
        result = session.run()
        assert canonical(result.records) == baseline["records_json"]
        assert cells_to_json(session.aggregate()) \
            == baseline["cells_json"]
        # The store round-trips the records too (fresh session, no run).
        reloaded = CampaignSession(SPEC64, store=store)
        assert canonical(reloaded.records()) == baseline["records_json"]
        assert cells_to_json(reloaded.aggregate()) \
            == baseline["cells_json"]

    def test_two_shard_merge_matches_baseline(self, backend, tmp_path,
                                              baseline):
        shard_stores = []
        for index in (0, 1):
            store = self.make_store(backend, tmp_path,
                                    "half%d" % index)
            shard = SPEC64.shard(index, 2)
            result = CampaignSession(shard, store=store).run()
            assert 0 < len(result.records) < 64
            shard_stores.append(store)
        merged = self.make_store(backend, tmp_path, "merged")
        count = merge_stores(shard_stores, merged)
        assert count == 64
        view = CampaignSession(SPEC64, store=merged)
        assert canonical(view.records()) == baseline["records_json"]
        assert cells_to_json(view.aggregate()) == baseline["cells_json"]


class TestSQLiteResume:
    def test_killed_campaign_resumes_without_rerunning(self, tmp_path,
                                                       baseline):
        # The PR-1 kill/resume protocol, repeated against SQLiteStore:
        # a store holding only the first 3 records resumes into the
        # exact baseline record set.
        store = SQLiteStore(str(tmp_path / "killed.db"))
        for record in baseline["records"][:3]:
            store.append(record)
        session = CampaignSession(SPEC64, store=store)
        result = session.resume()
        assert result.skipped == 3
        assert result.executed == 61
        assert canonical(result.records) == baseline["records_json"]
        assert store.completed_keys() \
            == {r["key"] for r in baseline["records"]}


class TestMachineOverrides:
    def test_override_axis_runs_and_aggregates(self):
        spec = CampaignSpec(
            name="override-axis",
            workloads=("gcc",), models=("SS-2",),
            rates_per_million=(0.0,),
            machine_overrides={"base": {}, "rob8": {"rob_size": 8}},
            replicates=1, instructions=300)
        session = CampaignSession(spec)
        result = session.run()
        assert len(result.records) == 2
        machines = {r["trial"]["machine"]: r for r in result.records}
        assert set(machines) == {"base", "rob8"}
        # A starved 8-entry window cannot beat the 128-entry baseline.
        assert machines["rob8"]["cycles"] \
            >= machines["base"]["cycles"]
        cells = session.aggregate()
        assert [cell.machine for cell in cells] == ["base", "rob8"]
        payload = json.loads(cells_to_json(cells))
        assert [cell["machine"] for cell in payload] == ["base", "rob8"]

    def test_faultfree_reuse_keys_on_overrides(self):
        # Same workload/model/budgets but different overrides must not
        # collide in the fault-free result memo.
        from repro.campaign.outcome import clear_result_caches
        clear_result_caches()
        plain = CampaignSpec(workloads=("gcc",), models=("SS-2",),
                             rates_per_million=(0.0,), replicates=1,
                             instructions=300)
        squeezed = CampaignSpec(workloads=("gcc",), models=("SS-2",),
                                rates_per_million=(0.0,), replicates=1,
                                machine_overrides={"rob8":
                                                   {"rob_size": 8}},
                                instructions=300)
        plain_record = CampaignSession(plain).run().records[0]
        squeezed_record = CampaignSession(squeezed).run().records[0]
        assert plain_record["cycles"] != squeezed_record["cycles"]
