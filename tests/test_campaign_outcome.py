"""Trial outcome classification against the golden reference."""

from repro.campaign.outcome import (DETECTED_RECOVERED, MASKED, OUTCOMES,
                                    SDC, TIMEOUT, TrialResult, run_trial)
from repro.campaign.spec import CampaignSpec

INSTRUCTIONS = 800


def one_trial(model, rate, mixes=None, replicate_of=1, **overrides):
    kwargs = dict(workloads=("gcc",), models=(model,),
                  rates_per_million=(rate,), replicates=replicate_of,
                  instructions=INSTRUCTIONS)
    if mixes is not None:
        kwargs["mixes"] = mixes
    kwargs.update(overrides)
    return list(CampaignSpec(**kwargs).trials())


class TestClassification:
    def test_fault_free_run_is_masked(self):
        result = run_trial(one_trial("SS-2", 0.0)[0])
        assert result.outcome == MASKED
        assert result.faults_injected == 0
        assert result.instructions >= INSTRUCTIONS
        assert result.ipc > 0
        assert result.reg_mismatches == 0
        assert result.mem_mismatches == 0

    def test_ss2_recovers_heavy_faults(self):
        # At 10k faults/M over 800+ instructions a strike is all but
        # certain; SS-2 must detect, rewind and stay architecturally
        # correct — the paper's central claim.  (Staying at 10k keeps
        # the trials inside the single-fault model: at ~30k/M the
        # lambda^2 common-mode window opens and both copies of one
        # branch can agree on the same corrupted next-PC.)
        results = [run_trial(t) for t in
                   one_trial("SS-2", 10_000.0, replicate_of=4)]
        assert all(r.outcome in (MASKED, DETECTED_RECOVERED)
                   for r in results)
        recovered = [r for r in results
                     if r.outcome == DETECTED_RECOVERED]
        assert recovered, "no trial detected anything at 30k faults/M"
        assert any(r.rewinds > 0 for r in recovered)

    def test_ss1_leaks_sdc_or_dies(self):
        # The unprotected baseline has no detection: value faults that
        # reach committed state are silent corruption (or a crash once
        # control flow leaves the program).
        results = [run_trial(t) for t in
                   one_trial("SS-1", 30_000.0, replicate_of=6,
                             mixes={"value-only": {"value": 1.0}})]
        assert any(r.outcome in (SDC, TIMEOUT) for r in results)
        for r in results:
            assert r.outcome in OUTCOMES
            assert r.faults_detected == 0

    def test_cycle_budget_exhaustion_is_timeout(self):
        trial = one_trial("SS-2", 0.0, max_cycles=40)[0]
        result = run_trial(trial)
        assert result.outcome == TIMEOUT
        assert "budget" in result.detail

    def test_warmup_window_metrics(self):
        trial = one_trial("SS-2", 0.0, warmup=400)[0]
        result = run_trial(trial)
        assert result.outcome == MASKED
        # Counters are totals; IPC refers to the post-warmup window.
        assert result.instructions >= INSTRUCTIONS + 400
        assert 0 < result.ipc <= 8


class TestRecord:
    def test_record_round_trip(self):
        result = run_trial(one_trial("SS-2", 5_000.0)[0])
        record = result.to_record()
        clone = TrialResult.from_record(record)
        assert clone == result
        assert record["key"] == result.trial["key"]

    def test_record_is_json_safe(self):
        import json
        record = run_trial(one_trial("SS-2", 5_000.0)[0]).to_record()
        assert json.loads(json.dumps(record)) == record
