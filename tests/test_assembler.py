"""Assembler tests: syntax, labels, directives, diagnostics."""

import pytest

from repro.errors import AssemblerError
from repro.isa.assembler import assemble
from repro.isa.opcodes import Op
from repro.isa.registers import fp_reg


class TestBasicSyntax:
    def test_empty_program_rejected(self):
        with pytest.raises(ValueError):
            assemble("")

    def test_single_halt(self):
        program = assemble("halt")
        assert len(program.text) == 1
        assert program.text[0].op == Op.HALT

    def test_comments_and_blank_lines(self):
        program = assemble("""
        ; full-line comment
        # hash comment
        addi r1, r0, 5   ; trailing comment
        halt
        """)
        assert len(program.text) == 2

    def test_alu_register_forms(self):
        program = assemble("add r1, r2, r3\nhalt")
        inst = program.text[0]
        assert (inst.op, inst.rd, inst.rs1, inst.rs2) == (Op.ADD, 1, 2, 3)

    def test_immediates_decimal_and_hex(self):
        program = assemble("addi r1, r0, -42\nori r2, r0, 0x1F\nhalt")
        assert program.text[0].imm == -42
        assert program.text[1].imm == 31

    def test_memory_operand_form(self):
        program = assemble("lw r1, 8(r2)\nsw r3, -4(r5)\nhalt")
        load, store = program.text[0], program.text[1]
        assert (load.rd, load.rs1, load.imm) == (1, 2, 8)
        assert (store.rs2, store.rs1, store.imm) == (3, 5, -4)

    def test_fp_instructions(self):
        program = assemble("fadd f1, f2, f3\nflw f4, 0(r1)\nhalt")
        assert program.text[0].rd == fp_reg(1)
        assert program.text[1].rd == fp_reg(4)


class TestLabels:
    def test_backward_branch(self):
        program = assemble("""
        loop: addi r1, r1, -1
              bne r1, r0, loop
              halt
        """)
        branch = program.text[1]
        assert branch.imm == -2  # target 0 = pc(1) + 1 + imm

    def test_forward_branch(self):
        program = assemble("""
              beq r1, r0, done
              addi r2, r0, 1
        done: halt
        """)
        assert program.text[0].imm == 1

    def test_jump_targets_are_absolute(self):
        program = assemble("""
              j entry
              nop
        entry: halt
        """)
        assert program.text[0].imm == 2

    def test_data_labels_resolve_to_word_addresses(self):
        program = assemble("""
        .data
        a:  .word 1, 2
        b:  .word 3
        .text
            lw r1, b(r0)
            halt
        """)
        assert program.text[0].imm == 2
        assert program.data == [1, 2, 3]

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("x: nop\nx: halt")

    def test_undefined_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("j nowhere\nhalt")


class TestDirectives:
    def test_space_reserves_zeroed_words(self):
        program = assemble(".data\n.space 3\n.word 9\n.text\nhalt")
        assert program.data == [0, 0, 0, 9]

    def test_float_words(self):
        program = assemble(".data\n.word 1.5, 2\n.text\nhalt")
        assert program.data == [1.5, 2]

    def test_word_outside_data_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".word 1\nhalt")

    def test_unknown_directive_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".bogus 1\nhalt")

    def test_negative_space_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".data\n.space -1\n.text\nhalt")


class TestDiagnostics:
    def test_unknown_mnemonic_reports_line(self):
        with pytest.raises(AssemblerError) as excinfo:
            assemble("nop\nfrobnicate r1\nhalt")
        assert "line 2" in str(excinfo.value)

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError):
            assemble("add r1, r2\nhalt")

    def test_instruction_in_data_segment_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".data\nadd r1, r2, r3")

    def test_malformed_memory_operand(self):
        with pytest.raises(AssemblerError):
            assemble("lw r1, 4[r2]\nhalt")
