"""The addressable fault-site model and its injection policies."""

import pytest

from repro.errors import ConfigError
from repro.faults import (FaultSite, InjectionPolicy, POLICY_REGISTRY,
                          RatePolicy, STRUCTURES, SiteListPolicy,
                          SiteStrike, StructureSweepPolicy, arm_entry,
                          build_policy, register_policy,
                          structure_applies, structure_width)
from repro.models.presets import ss1, ss2
from repro.uarch.processor import Processor
from repro.workloads.generator import build_workload


class TestFaultSite:
    def test_defaults_and_round_trip(self):
        site = FaultSite(structure="fu_result", index=40, copy=1, bit=7)
        assert FaultSite.from_dict(site.to_dict()) == site
        windowed = FaultSite(structure="pc", index=3, bit=2,
                             window=(10, 500))
        assert FaultSite.from_dict(windowed.to_dict()) == windowed

    def test_unknown_structure(self):
        with pytest.raises(ConfigError):
            FaultSite(structure="tlb_entry", bit=0)

    def test_bit_bounds_follow_structure_width(self):
        FaultSite(structure="rob_entry", bit=63)
        FaultSite(structure="pc", bit=15)
        FaultSite(structure="branch_outcome", bit=15)
        with pytest.raises(ConfigError):
            FaultSite(structure="pc", bit=16)
        with pytest.raises(ConfigError):
            FaultSite(structure="branch_outcome", bit=16)
        with pytest.raises(ConfigError):
            FaultSite(structure="fu_result", bit=64)
        with pytest.raises(ConfigError):
            FaultSite(structure="fu_result", bit=-1)

    def test_operand_and_window_validation(self):
        with pytest.raises(ConfigError):
            FaultSite(structure="rename_tag", operand=2)
        with pytest.raises(ConfigError):
            FaultSite(structure="pc", window=(5, 5))
        with pytest.raises(ConfigError):
            FaultSite(structure="pc", window=(-1, 5))
        with pytest.raises(ConfigError):
            FaultSite(structure="pc", window=(0,))

    def test_window_gates(self):
        site = FaultSite(structure="pc", window=(10, 20))
        assert not site.in_window(9)
        assert site.in_window(10)
        assert site.in_window(19)
        assert not site.in_window(20)
        assert site.expired(20)
        assert not site.expired(19)

    def test_from_dict_rejects_junk(self):
        with pytest.raises(ConfigError):
            FaultSite.from_dict({"bit": 3})            # no structure
        with pytest.raises(ConfigError):
            FaultSite.from_dict({"structure": "pc", "depth": 1})
        with pytest.raises(ConfigError):
            FaultSite.from_dict("pc")

    def test_every_structure_has_width_and_description(self):
        from repro.faults import (STRUCTURE_DESCRIPTIONS,
                                  STRUCTURE_WIDTHS)
        assert set(STRUCTURE_WIDTHS) == set(STRUCTURES)
        assert set(STRUCTURE_DESCRIPTIONS) == set(STRUCTURES)
        for structure in STRUCTURES:
            assert structure_width(structure) in (16, 64)


class TestStructureApplies:
    @pytest.fixture(scope="class")
    def by_kind(self):
        """One instruction per interesting shape, from a real workload."""
        program = build_workload("gcc")
        found = {}
        for inst in program.text:
            info = inst.info
            if info.is_mem and "mem" not in found:
                found["mem"] = inst
            elif inst.is_control and "control" not in found:
                found["control"] = inst
            elif info.writes_reg and not info.is_mem \
                    and "alu" not in found:
                found["alu"] = inst
            elif not info.writes_reg and not inst.is_control \
                    and not info.is_mem and "inert" not in found:
                found["inert"] = inst
        return found

    def test_mem_structures(self, by_kind):
        assert structure_applies("lsq_address", by_kind["mem"])
        assert not structure_applies("lsq_address", by_kind["alu"])

    def test_control_structures(self, by_kind):
        assert structure_applies("branch_outcome", by_kind["control"])
        assert not structure_applies("branch_outcome", by_kind["alu"])

    def test_result_structures(self, by_kind):
        assert structure_applies("fu_result", by_kind["alu"])
        assert structure_applies("rob_entry", by_kind["alu"])
        if "inert" in by_kind:
            assert not structure_applies("fu_result", by_kind["inert"])

    def test_pc_always_applies(self, by_kind):
        for inst in by_kind.values():
            assert structure_applies("pc", inst)

    def test_unknown_structure_raises(self, by_kind):
        with pytest.raises(ConfigError):
            structure_applies("warp_core", by_kind["alu"])


class _Entry:
    """Minimal RobEntry stand-in for arm_entry unit tests."""

    def __init__(self):
        self.fault_kind = None
        self.fault_bit = 0
        self.op_fault = None
        self.site = None


class TestArmEntry:
    def test_result_structures_ride_fault_kind(self):
        entry = _Entry()
        arm_entry(entry, SiteStrike(structure="fu_result", bit=9))
        assert (entry.fault_kind, entry.fault_bit) == ("value", 9)
        assert entry.site == "fu_result"
        entry = _Entry()
        arm_entry(entry, SiteStrike(structure="rob_entry", bit=3))
        assert entry.fault_kind == "rob_value"
        entry = _Entry()
        arm_entry(entry, SiteStrike(structure="lsq_address", bit=1))
        assert entry.fault_kind == "address"
        entry = _Entry()
        arm_entry(entry, SiteStrike(structure="branch_outcome", bit=2))
        assert entry.fault_kind == "branch"

    def test_operand_structures_ride_op_fault(self):
        entry = _Entry()
        arm_entry(entry, SiteStrike(structure="iq_entry", bit=5,
                                    operand=1))
        assert entry.op_fault == (1, 5)
        assert entry.fault_kind is None
        assert entry.site == "iq_entry"

    def test_group_scope_strike_rejected(self):
        with pytest.raises(ConfigError):
            arm_entry(_Entry(), SiteStrike(structure="pc", bit=0))


class TestSiteListPolicy:
    def test_needs_sites(self):
        with pytest.raises(ConfigError):
            SiteListPolicy([])
        with pytest.raises(ConfigError):
            SiteListPolicy([{"structure": "pc"}])      # not a FaultSite

    def test_strike_waits_for_applicable_target(self):
        program = build_workload("gcc")
        alu_inst = next(inst for inst in program.text
                        if inst.info.writes_reg and not inst.info.is_mem)
        mem_inst = next(inst for inst in program.text
                        if inst.info.is_mem)
        policy = SiteListPolicy([FaultSite(structure="lsq_address",
                                           index=5, copy=0, bit=4)])
        assert policy.plan_copy(4, 0, mem_inst, cycle=1) is None  # early
        assert policy.plan_copy(5, 1, mem_inst, cycle=1) is None  # copy
        assert policy.plan_copy(5, 0, alu_inst, cycle=1) is None  # shape
        strike = policy.plan_copy(7, 0, mem_inst, cycle=1)
        assert strike == SiteStrike(structure="lsq_address", bit=4)
        assert len(policy.landed) == 1 and not policy.pending
        # One strike per site: it never fires twice.
        assert policy.plan_copy(8, 0, mem_inst, cycle=1) is None

    def test_window_expiry(self):
        program = build_workload("gcc")
        inst = next(inst for inst in program.text
                    if inst.info.writes_reg)
        policy = SiteListPolicy([FaultSite(structure="fu_result",
                                           index=0, copy=0, bit=1,
                                           window=(0, 10))])
        assert policy.plan_copy(0, 0, inst, cycle=10) is None
        assert len(policy.expired) == 1 and not policy.pending

    def test_group_scope_sites_fire_in_plan_group(self):
        policy = SiteListPolicy([FaultSite(structure="pc", index=3,
                                           bit=2)])
        assert policy.plan_group(2, cycle=1) is None
        assert policy.plan_group(3, cycle=1) \
            == SiteStrike(structure="pc", bit=2)
        assert policy.plan_copy(3, 0, None, cycle=1) is None

    def test_reset_rearms(self):
        policy = SiteListPolicy([FaultSite(structure="pc", bit=1)])
        assert policy.plan_group(0, 1) is not None
        policy.reset()
        assert policy.plan_group(0, 1) is not None


class TestStructureSweepPolicy:
    def test_same_seed_same_sites(self):
        a = StructureSweepPolicy("rob_entry", strikes=3, horizon=500,
                                 seed=42)
        b = StructureSweepPolicy("rob_entry", strikes=3, horizon=500,
                                 seed=42)
        a.bind(2)
        b.bind(2)
        assert a.sites == b.sites
        assert all(site.structure == "rob_entry" for site in a.sites)
        assert all(0 <= site.index < 500 for site in a.sites)
        assert all(site.copy in (0, 1) for site in a.sites)

    def test_different_seed_different_sites(self):
        a = StructureSweepPolicy("rob_entry", strikes=4, horizon=500,
                                 seed=1)
        b = StructureSweepPolicy("rob_entry", strikes=4, horizon=500,
                                 seed=2)
        assert a.sites != b.sites

    def test_bind_resamples_copies_for_redundancy(self):
        policy = StructureSweepPolicy("fu_result", strikes=8,
                                      horizon=100, seed=9)
        assert all(site.copy == 0 for site in policy.sites)
        policy.bind(3)
        assert any(site.copy > 0 for site in policy.sites)

    def test_operand_structures_sample_operand_slots(self):
        policy = StructureSweepPolicy("rename_tag", strikes=16,
                                      horizon=100, seed=5)
        assert {site.operand for site in policy.sites} == {0, 1}

    def test_validation(self):
        with pytest.raises(ConfigError):
            StructureSweepPolicy("warp_core")
        with pytest.raises(ConfigError):
            StructureSweepPolicy("pc", strikes=0)
        with pytest.raises(ConfigError):
            StructureSweepPolicy("pc", horizon=0)


class TestBuildPolicyAndRegistry:
    def test_build_structure_sweep(self):
        policy = build_policy({"policy": "structure_sweep",
                               "structure": "iq_entry", "strikes": 2},
                              seed=7, horizon=300)
        assert isinstance(policy, StructureSweepPolicy)
        assert policy.seed == 7 and policy.horizon == 300

    def test_build_site_list(self):
        policy = build_policy({"policy": "site_list",
                               "sites": [{"structure": "pc", "bit": 3}]})
        assert isinstance(policy, SiteListPolicy)

    def test_build_rejects_junk(self):
        for bad in ({"policy": "nosuch"},
                    {"policy": "site_list", "sites": []},
                    {"policy": "site_list"},
                    {"policy": "structure_sweep"},
                    {"policy": "structure_sweep", "structure": "pc",
                     "surprise": 1},
                    "structure_sweep", 42):
            with pytest.raises(ConfigError):
                build_policy(bad)

    def test_registry_contents(self):
        assert set(POLICY_REGISTRY) >= {"rate", "site_list",
                                        "structure_sweep"}

    def test_every_policy_describes_itself(self):
        from repro.core.faults import FaultConfig
        policies = (RatePolicy(FaultConfig(rate_per_million=10.0)),
                    SiteListPolicy([FaultSite(structure="pc", bit=1)]),
                    StructureSweepPolicy("rob_entry", horizon=100))
        for policy in policies:
            text = policy.describe()
            assert isinstance(text, str) and text

        class Minimal(InjectionPolicy):
            name = "minimal"

            def reset(self):
                pass

        # describe() has a working default: subclasses are not forced
        # to implement a method the harness may never call.
        assert Minimal().describe()

    def test_register_policy_validates(self):
        with pytest.raises(ConfigError):
            register_policy(dict)

        class Nameless(InjectionPolicy):
            def reset(self):
                pass

            def describe(self):
                return ""

        with pytest.raises(ConfigError):
            register_policy(Nameless)

        class Custom(Nameless):
            name = "custom-test"

        try:
            assert register_policy(Custom) is Custom
            assert POLICY_REGISTRY["custom-test"] is Custom
        finally:
            POLICY_REGISTRY.pop("custom-test", None)


#: Strikes used by the engine-integration matrix: index 50 lands well
#: inside the gcc loop on every model.
_SITES = {
    "fu_result": FaultSite(structure="fu_result", index=50, copy=1,
                           bit=5),
    "rob_entry": FaultSite(structure="rob_entry", index=50, copy=1,
                           bit=5),
    "lsq_address": FaultSite(structure="lsq_address", index=50, copy=1,
                             bit=5),
    "branch_outcome": FaultSite(structure="branch_outcome", index=50,
                                copy=1, bit=5),
    "pc": FaultSite(structure="pc", index=50, bit=5),
    "rename_tag": FaultSite(structure="rename_tag", index=50, copy=1,
                            bit=5),
    "iq_entry": FaultSite(structure="iq_entry", index=50, copy=1,
                          bit=5, operand=0),
}


class TestEngineIntegration:
    @pytest.mark.parametrize("structure", sorted(_SITES))
    def test_every_structure_strikes_and_is_detected_on_ss2(
            self, structure):
        """One directed strike per structure: it applies exactly once,
        the R=2 machine detects it, and the run stays architecturally
        correct (commit cross-check or PC continuity catches it)."""
        program = build_workload("gcc")
        model = ss2()
        policy = SiteListPolicy([_SITES[structure]])
        processor = Processor(program, config=model.config, ft=model.ft,
                              policy=policy)
        processor.run(max_instructions=2_000, max_cycles=100_000)
        stats = processor.stats
        assert stats.faults_injected == 1
        assert stats.faults_detected >= 1
        assert stats.extras["site_strikes"] == {structure: 1}
        if structure == "pc":
            assert stats.pc_continuity_violations == 1

    def test_rate_and_policy_are_mutually_exclusive(self):
        from repro.core.faults import FaultConfig
        program = build_workload("gcc")
        model = ss2()
        with pytest.raises(ConfigError):
            Processor(program, config=model.config, ft=model.ft,
                      fault_config=FaultConfig(rate_per_million=100.0),
                      policy=SiteListPolicy([_SITES["pc"]]))

    def test_policy_must_be_an_injection_policy(self):
        program = build_workload("gcc")
        model = ss2()
        with pytest.raises(ConfigError):
            Processor(program, config=model.config, ft=model.ft,
                      policy="rate")

    def test_unprotected_machine_commits_silent_corruption(self):
        """The same rob_entry strike on SS-1: nothing detects it, the
        corrupted value (or nothing, if masked) simply commits."""
        program = build_workload("gcc")
        model = ss1()
        # copy=0: the R=1 machine has no second copy to strike.
        policy = SiteListPolicy([FaultSite(structure="rob_entry",
                                           index=50, copy=0, bit=5)])
        processor = Processor(program, config=model.config, ft=model.ft,
                              policy=policy)
        processor.run(max_instructions=2_000, max_cycles=100_000)
        stats = processor.stats
        assert stats.faults_injected == 1
        assert stats.faults_detected == 0
        assert stats.rewinds == 0
        assert stats.silent_commits == 1

    def test_rate_policy_matches_fault_config(self):
        """Processor(policy=RatePolicy(cfg)) is Processor(fault_config=
        cfg): identical stats, byte for byte."""
        from repro.core.faults import FaultConfig
        program = build_workload("gcc")
        model = ss2()
        config = FaultConfig(rate_per_million=20_000.0, seed=4242)
        via_config = Processor(program, config=model.config,
                               ft=model.ft, fault_config=config)
        via_config.run(max_instructions=1_500, max_cycles=100_000)
        via_policy = Processor(program, config=model.config,
                               ft=model.ft,
                               policy=RatePolicy(config))
        via_policy.run(max_instructions=1_500, max_cycles=100_000)
        assert via_config.stats == via_policy.stats
