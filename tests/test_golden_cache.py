"""Golden-cache correctness: campaign outcomes with memoized golden
traces, store-footprint comparison, and fault-free result reuse must be
byte-identical to per-trial golden runs — serially, under --workers N,
and across resume."""

import os

import pytest

from repro.campaign import (CampaignSpec, ResultStore, run_campaign,
                            run_trial)

pytestmark = pytest.mark.filterwarnings(
    "ignore:run_campaign:DeprecationWarning")
from repro.campaign.golden import (GoldenTrace, cached_trace,
                                   clear_trace_cache,
                                   compare_with_golden)
from repro.campaign.outcome import clear_result_caches
from repro.functional.checker import compare_states
from repro.functional.simulator import FunctionalSimulator
from repro.workloads.generator import build_workload


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_result_caches()
    clear_trace_cache()
    yield
    clear_result_caches()
    clear_trace_cache()


SPEC = CampaignSpec(
    name="golden-cache-suite",
    workloads=("gcc",),
    models=("SS-1", "SS-2"),
    # Includes a rate low enough that some trials draw no fault (the
    # silent-injector reuse path) and one high enough to exercise SDC
    # and detection outcomes.
    rates_per_million=(0.0, 30.0, 20_000.0),
    replicates=3,
    instructions=400)


def _records(**kwargs):
    clear_result_caches()
    clear_trace_cache()
    return run_campaign(SPEC, **kwargs).records


class TestCampaignEquivalence:
    def test_all_paths_byte_identical(self):
        reference = _records(simulator="reference", golden_cache=False,
                             reuse_faultfree=False)
        cached = _records()
        no_reuse = _records(reuse_faultfree=False)
        no_cache = _records(golden_cache=False, reuse_faultfree=False)
        assert cached == reference
        assert no_reuse == reference
        assert no_cache == reference

    def test_workers_identical(self):
        serial = _records()
        parallel = _records(workers=2)
        assert parallel == serial

    def test_resume_identical(self, tmp_path):
        full = _records()
        path = os.path.join(str(tmp_path), "partial.jsonl")
        store = ResultStore(path)
        for record in full[: len(full) // 2]:
            store.append(record)
        clear_result_caches()
        clear_trace_cache()
        resumed = run_campaign(SPEC, store=ResultStore(path),
                               resume=True)
        assert resumed.records == full
        assert resumed.skipped == len(full) // 2

    def test_unknown_simulator_rejected(self):
        trial = next(SPEC.trials())
        with pytest.raises(ValueError, match="unknown simulator"):
            run_trial(trial, simulator="warp")


class TestFaultFreeReuse:
    def test_replicates_share_one_execution(self, monkeypatch):
        import repro.campaign.outcome as outcome_module
        calls = []
        original = outcome_module._execute_and_classify

        def counting(trial, fault_config, fast, golden_cache):
            calls.append(trial.key)
            return original(trial, fault_config, fast, golden_cache)

        monkeypatch.setattr(outcome_module, "_execute_and_classify",
                            counting)
        trials = [t for t in SPEC.trials()
                  if t.rate_per_million == 0.0 and t.model == "SS-2"]
        assert len(trials) == 3
        results = [run_trial(t) for t in trials]
        assert len(calls) == 1          # one simulation, three records
        outcomes = {r.outcome for r in results}
        assert len(outcomes) == 1
        keys = {r.key for r in results}
        assert len(keys) == 3           # but each keeps its own trial


class TestGoldenTrace:
    def _fresh_state(self, program, count):
        sim = FunctionalSimulator(program, mem_size=1 << 16)
        for _ in range(count):
            if not sim.step():
                break
        return sim.state

    def test_seek_matches_fresh_runs_in_any_order(self):
        program = build_workload("gcc")
        trace = GoldenTrace(program, mem_size=1 << 16)
        for count in (250, 40, 400, 0, 399, 41):
            state = trace.seek(count)
            fresh = self._fresh_state(program, count)
            assert compare_states(state, fresh).clean
            assert state.pc == fresh.pc
            assert state.halted == fresh.halted

    def test_seek_past_halt(self):
        program = build_workload("gcc", iterations=2)
        golden = FunctionalSimulator(program, mem_size=1 << 16)
        steps = 0
        while golden.step():
            steps += 1
        steps += 1                      # the halt instruction itself
        trace = GoldenTrace(program, mem_size=1 << 16)
        state = trace.seek(steps + 1_000)
        assert state.halted
        assert trace.position == steps
        # ... and rewinding back out of the halt works.
        back = trace.seek(steps - 3)
        fresh = self._fresh_state(program, steps - 3)
        assert not back.halted
        assert compare_states(back, fresh).clean

    def test_cached_trace_identity_guard(self):
        program_a = build_workload("gcc")
        program_b = build_workload("go")
        key = ("shared", 0)
        trace_a = cached_trace(key, program_a, mem_size=1 << 16)
        assert cached_trace(key, program_a, mem_size=1 << 16) is trace_a
        trace_b = cached_trace(key, program_b, mem_size=1 << 16)
        assert trace_b is not trace_a
        assert trace_b.program is program_b


class TestCompareWithGolden:
    def test_matches_compare_states_on_divergence(self):
        program = build_workload("gcc")
        left_sim = FunctionalSimulator(program, mem_size=1 << 16)
        right_sim = FunctionalSimulator(program, mem_size=1 << 16)
        for _ in range(300):
            left_sim.step()
            right_sim.step()
        # Diverge the left state: registers and a store footprint.
        left = left_sim.state
        left.write_reg(7, left.read_reg(7) + 99)
        left.memory.store(12_345, 0xDEAD)
        left.memory.store(3, -1.5)
        full = compare_states(left, right_sim.state)
        fast = compare_with_golden(left, right_sim.state)
        assert fast.reg_mismatches == full.reg_mismatches
        assert fast.mem_mismatches == full.mem_mismatches
        assert fast.summary() == full.summary()

    def test_clean_states_compare_clean(self):
        program = build_workload("go")
        a = FunctionalSimulator(program, mem_size=1 << 16)
        b = FunctionalSimulator(program, mem_size=1 << 16)
        for _ in range(200):
            a.step()
            b.step()
        assert compare_with_golden(a.state, b.state).clean

    def test_size_mismatch_rejected(self):
        program = build_workload("go")
        a = FunctionalSimulator(program, mem_size=1 << 16)
        b = FunctionalSimulator(program, mem_size=1 << 15)
        with pytest.raises(ValueError):
            compare_with_golden(a.state, b.state)
