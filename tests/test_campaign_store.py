"""Result-store backends: persistence, resume keys, torn-line
tolerance, URL selection, sharded fan-out, merging and compaction."""

import json
import os

import pytest

from repro.campaign.store import (DEFAULT_SHARDS, JSONLStore,
                                  ResultStore, ShardedJSONLStore,
                                  SQLiteStore, StoreBackend,
                                  merge_stores, open_store,
                                  shard_of_key)


def record(key, **extra):
    data = {"key": key, "outcome": "masked"}
    data.update(extra)
    return data


def make_store(backend, tmp_path, label="store"):
    if backend == "jsonl":
        return JSONLStore(str(tmp_path / ("%s.jsonl" % label)))
    if backend == "sqlite":
        return SQLiteStore(str(tmp_path / ("%s.db" % label)))
    return ShardedJSONLStore(str(tmp_path / label), shards=3)


@pytest.mark.parametrize("backend", ["jsonl", "sqlite", "sharded"])
class TestBackendContract:
    """Behaviour every StoreBackend implementation must share."""

    def test_missing_storage_loads_empty(self, backend, tmp_path):
        store = make_store(backend, tmp_path, "none")
        assert not store.exists
        assert store.load() == []
        assert store.completed_keys() == set()

    def test_append_load_round_trip(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        store.append(record("aaaa", ipc=1.5))
        store.append(record("bbbb", ipc=0.5))
        loaded = store.load()
        assert {r["key"] for r in loaded} == {"aaaa", "bbbb"}
        by_key = {r["key"]: r for r in loaded}
        assert by_key["aaaa"]["ipc"] == 1.5
        assert store.completed_keys() == {"aaaa", "bbbb"}

    def test_append_requires_key(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        with pytest.raises(ValueError):
            store.append({"outcome": "masked"})

    def test_truncate(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        store.append(record("aaaa"))
        store.truncate()
        assert store.exists
        assert store.load() == []

    def test_creates_parent_directories(self, backend, tmp_path):
        store = make_store(backend, tmp_path / "deep" / "dir")
        store.append(record("aaaa"))
        assert store.completed_keys() == {"aaaa"}

    def test_duplicate_keys_kept_until_compact(self, backend, tmp_path):
        # Appends never reject: resume's dict collapse and compact()
        # both apply last-write-wins.
        store = make_store(backend, tmp_path)
        store.append(record("aaaa", ipc=1.0))
        store.append(record("bbbb"))
        store.append(record("aaaa", ipc=2.0))
        assert len(store.load()) == 3
        kept, dropped = store.compact()
        assert (kept, dropped) == (2, 1)
        by_key = {r["key"]: r for r in store.load()}
        assert by_key["aaaa"]["ipc"] == 2.0
        assert set(by_key) == {"aaaa", "bbbb"}
        # Compacting a compacted store drops nothing further.
        assert store.compact() == (2, 0)

    def test_compact_missing_storage_is_a_noop(self, backend, tmp_path):
        store = make_store(backend, tmp_path, "never")
        assert store.compact() == (0, 0)

    def test_repr_names_backend_and_path(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        assert type(store).__name__ in repr(store)
        assert store.path in repr(store)


class TestJSONLStore:
    def test_result_store_alias(self):
        # PR-1 import location keeps working.
        assert ResultStore is JSONLStore

    def test_torn_tail_is_skipped(self, tmp_path):
        path = tmp_path / "r.jsonl"
        store = JSONLStore(str(path))
        store.append(record("aaaa"))
        store.append(record("bbbb"))
        # Simulate a campaign killed mid-write: a torn trailing line.
        with open(path, "a") as handle:
            handle.write(json.dumps(record("cccc"))[:17])
        assert store.completed_keys() == {"aaaa", "bbbb"}
        # Appending after the torn line keeps the store usable: the
        # recovered record lands on its own line.
        store.append(record("dddd"))
        assert "dddd" in store.completed_keys()

    def test_blank_and_non_dict_lines_skipped(self, tmp_path):
        path = tmp_path / "r.jsonl"
        path.write_text('\n[1,2]\n{"no_key": true}\n'
                        + json.dumps(record("eeee")) + "\n")
        store = JSONLStore(str(path))
        assert store.completed_keys() == {"eeee"}

    def test_compact_drops_torn_tail_and_garbage(self, tmp_path):
        path = tmp_path / "r.jsonl"
        store = JSONLStore(str(path))
        store.append(record("aaaa", ipc=1.0))
        store.append(record("bbbb"))
        store.append(record("aaaa", ipc=2.0))
        with open(path, "a") as handle:
            handle.write('[1,2]\n' + json.dumps(record("cccc"))[:9])
        kept, dropped = store.compact()
        assert kept == 2
        assert dropped == 3          # stale aaaa + garbage + torn tail
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        # Last-write-wins value, first-appearance order, clean file.
        assert json.loads(lines[0]) == record("aaaa", ipc=2.0)
        assert json.loads(lines[1]) == record("bbbb")


class TestSQLiteStore:
    def test_load_preserves_append_order(self, tmp_path):
        store = make_store("sqlite", tmp_path)
        for key in ("cccc", "aaaa", "bbbb"):
            store.append(record(key))
        assert [r["key"] for r in store.load()] \
            == ["cccc", "aaaa", "bbbb"]

    def test_reopen_sees_records(self, tmp_path):
        path = str(tmp_path / "r.db")
        SQLiteStore(path).append(record("aaaa"))
        reopened = SQLiteStore(path)
        assert reopened.completed_keys() == {"aaaa"}

    def test_records_round_trip_exactly(self, tmp_path):
        store = make_store("sqlite", tmp_path)
        full = record("aaaa", ipc=1.25, trial={"key": "aaaa",
                                               "workload": "gcc"},
                      counts=[1, 2, 3])
        store.append(full)
        assert store.load() == [full]


class TestShardedStore:
    def test_fans_records_across_shard_files(self, tmp_path):
        store = ShardedJSONLStore(str(tmp_path / "dir"), shards=3)
        keys = ["%04x" % value for value in range(16)]
        for key in keys:
            store.append(record(key))
        files = sorted(os.listdir(str(tmp_path / "dir")))
        assert files == ["shard-000.jsonl", "shard-001.jsonl",
                         "shard-002.jsonl"]
        per_file = [len(JSONLStore(str(tmp_path / "dir" / name)).load())
                    for name in files]
        assert sum(per_file) == 16
        assert all(count > 0 for count in per_file)
        # Routing is the documented pure function of the key.
        for key in keys:
            shard = shard_of_key(key, 3)
            shard_store = JSONLStore(
                str(tmp_path / "dir" / ("shard-%03d.jsonl" % shard)))
            assert key in shard_store.completed_keys()

    def test_reopen_infers_shard_count(self, tmp_path):
        path = str(tmp_path / "dir")
        ShardedJSONLStore(path, shards=3).append(record("aaaa"))
        reopened = ShardedJSONLStore(path)        # no count given
        assert reopened.shards == 3
        assert reopened.completed_keys() == {"aaaa"}

    def test_default_shard_count(self, tmp_path):
        store = ShardedJSONLStore(str(tmp_path / "dir"))
        assert store.shards == DEFAULT_SHARDS

    def test_bad_shard_count_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ShardedJSONLStore(str(tmp_path / "dir"), shards=0)

    def test_non_hex_keys_still_route(self, tmp_path):
        store = ShardedJSONLStore(str(tmp_path / "dir"), shards=2)
        store.append(record("not-hex-key"))
        assert store.completed_keys() == {"not-hex-key"}


class TestOpenStore:
    def test_none_and_empty_pass_through(self):
        assert open_store(None) is None
        assert open_store("") is None

    def test_plain_path_is_jsonl(self, tmp_path):
        store = open_store(str(tmp_path / "r.jsonl"))
        assert isinstance(store, JSONLStore)

    def test_sqlite_url(self, tmp_path):
        store = open_store("sqlite:" + str(tmp_path / "r.db"))
        assert isinstance(store, SQLiteStore)
        assert store.path == str(tmp_path / "r.db")

    def test_shard_url(self, tmp_path):
        store = open_store("shard:" + str(tmp_path / "dir"))
        assert isinstance(store, ShardedJSONLStore)
        assert store.shards == DEFAULT_SHARDS

    def test_shard_url_with_count(self, tmp_path):
        store = open_store("shard:4:" + str(tmp_path / "dir"))
        assert isinstance(store, ShardedJSONLStore)
        assert store.shards == 4

    def test_backend_instance_passes_through(self, tmp_path):
        store = JSONLStore(str(tmp_path / "r.jsonl"))
        assert open_store(store) is store
        assert isinstance(store, StoreBackend)


class TestMergeStores:
    @pytest.mark.parametrize("dest_backend",
                             ["jsonl", "sqlite", "sharded"])
    def test_merge_across_backends(self, dest_backend, tmp_path):
        jsonl = make_store("jsonl", tmp_path, "a")
        sqlite = make_store("sqlite", tmp_path, "b")
        jsonl.append(record("aaaa", ipc=1.0))
        jsonl.append(record("bbbb"))
        sqlite.append(record("cccc"))
        sqlite.append(record("aaaa", ipc=9.0))     # later source wins
        dest = make_store(dest_backend, tmp_path, "merged")
        count = merge_stores([jsonl, sqlite], dest)
        assert count == 3
        by_key = {r["key"]: r for r in dest.load()}
        assert set(by_key) == {"aaaa", "bbbb", "cccc"}
        assert by_key["aaaa"]["ipc"] == 9.0

    def test_merge_into_nonempty_dest_appends(self, tmp_path):
        source = make_store("jsonl", tmp_path, "src")
        source.append(record("aaaa"))
        dest = make_store("jsonl", tmp_path, "dst")
        dest.append(record("zzzz"))
        merge_stores([source], dest)
        assert dest.completed_keys() == {"aaaa", "zzzz"}

    def test_concurrent_writers_same_key_last_write_wins(self,
                                                         tmp_path):
        """Two shard stores both hold the same trial key with
        different payloads (the concurrent-writer case: a shard
        restarted on another host, or an operator re-running a shard
        by hand).  The documented tie-break: sources are read in
        argument order, newest-seen record per key wins — so the
        later *source* beats the earlier one, and within one source a
        re-appended record beats its own stale predecessor.
        """
        first = make_store("jsonl", tmp_path, "shard0")
        second = make_store("jsonl", tmp_path, "shard1")
        first.append(record("f00d", outcome="sdc", ipc=0.25))
        first.append(record("f00d", outcome="masked", ipc=0.5))
        second.append(record("f00d", outcome="detected_recovered",
                             ipc=0.75))
        dest = make_store("jsonl", tmp_path, "winner")
        assert merge_stores([first, second], dest) == 1
        (merged,) = dest.load()
        assert merged["outcome"] == "detected_recovered"
        assert merged["ipc"] == 0.75
        # Flip the source order: the other writer's newest now wins.
        dest_flipped = make_store("jsonl", tmp_path, "flipped")
        assert merge_stores([second, first], dest_flipped) == 1
        (merged,) = dest_flipped.load()
        assert merged["outcome"] == "masked"
        assert merged["ipc"] == 0.5
