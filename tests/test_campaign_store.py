"""JSONL result store: persistence, resume keys, torn-line tolerance."""

import json

import pytest

from repro.campaign.store import ResultStore


def record(key, **extra):
    data = {"key": key, "outcome": "masked"}
    data.update(extra)
    return data


class TestStore:
    def test_missing_file_loads_empty(self, tmp_path):
        store = ResultStore(str(tmp_path / "none.jsonl"))
        assert not store.exists
        assert store.load() == []
        assert store.completed_keys() == set()

    def test_append_load_round_trip(self, tmp_path):
        store = ResultStore(str(tmp_path / "r.jsonl"))
        store.append(record("aaaa", ipc=1.5))
        store.append(record("bbbb", ipc=0.5))
        loaded = store.load()
        assert [r["key"] for r in loaded] == ["aaaa", "bbbb"]
        assert loaded[0]["ipc"] == 1.5
        assert store.completed_keys() == {"aaaa", "bbbb"}

    def test_append_requires_key(self, tmp_path):
        store = ResultStore(str(tmp_path / "r.jsonl"))
        with pytest.raises(ValueError):
            store.append({"outcome": "masked"})

    def test_torn_tail_is_skipped(self, tmp_path):
        path = tmp_path / "r.jsonl"
        store = ResultStore(str(path))
        store.append(record("aaaa"))
        store.append(record("bbbb"))
        # Simulate a campaign killed mid-write: a torn trailing line.
        with open(path, "a") as handle:
            handle.write(json.dumps(record("cccc"))[:17])
        assert store.completed_keys() == {"aaaa", "bbbb"}
        # Appending after the torn line keeps the store usable: the
        # recovered record lands on its own line.
        store.append(record("dddd"))
        assert "dddd" in store.completed_keys()

    def test_blank_and_non_dict_lines_skipped(self, tmp_path):
        path = tmp_path / "r.jsonl"
        path.write_text('\n[1,2]\n{"no_key": true}\n'
                        + json.dumps(record("eeee")) + "\n")
        store = ResultStore(str(path))
        assert store.completed_keys() == {"eeee"}

    def test_truncate(self, tmp_path):
        store = ResultStore(str(tmp_path / "sub" / "r.jsonl"))
        store.append(record("aaaa"))
        store.truncate()
        assert store.exists
        assert store.load() == []

    def test_creates_parent_directories(self, tmp_path):
        store = ResultStore(str(tmp_path / "deep" / "dir" / "r.jsonl"))
        store.append(record("aaaa"))
        assert store.completed_keys() == {"aaaa"}
