"""Program save/load round-trip tests."""

import pytest

from repro.errors import SimulationError
from repro.functional.checker import compare_states
from repro.functional.simulator import run_functional
from repro.program.loader import (load_program, program_from_dict,
                                  program_to_dict, save_program)
from repro.workloads.generator import build_workload
from repro.workloads.microbench import dot_product, fibonacci


class TestRoundTrip:
    def test_dict_round_trip(self):
        program = fibonacci(n=16)
        clone = program_from_dict(program_to_dict(program))
        assert clone.text == program.text
        assert clone.data == program.data
        assert clone.name == program.name

    def test_file_round_trip(self, tmp_path):
        program = dot_product(length=8)
        path = save_program(program, tmp_path / "prog.json")
        clone = load_program(path)
        assert clone.text == program.text
        assert clone.data == program.data

    def test_float_data_survives(self, tmp_path):
        program = dot_product(length=4)
        clone = load_program(save_program(program,
                                          tmp_path / "p.json"))
        assert any(isinstance(cell, float) for cell in clone.data)

    def test_reloaded_program_executes_identically(self, tmp_path):
        program = build_workload("go", iterations=5)
        clone = load_program(save_program(program,
                                          tmp_path / "go.json"))
        original = run_functional(program, max_instructions=200_000)
        reloaded = run_functional(clone, max_instructions=200_000)
        assert compare_states(original.state, reloaded.state).clean
        assert original.instret == reloaded.instret

    def test_unknown_format_rejected(self):
        with pytest.raises(SimulationError):
            program_from_dict({"format": 99})
