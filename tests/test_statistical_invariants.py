"""Property-based statistical invariants of the campaign layer.

The adaptive scheduler and the multi-shard orchestrator both lean on
two promises that are easy to break silently: the Wilson interval
behaves like a confidence interval (bounded, contains the sample
proportion, narrows with evidence), and aggregation is a pure function
of the record *set* — the order records arrive in, and whether they
travelled through one store or N shard stores and a merge, must never
change a single aggregated byte.  Hypothesis hunts the corners a
hand-picked example table would miss.

Float caveat made explicit: ``aggregate`` sums IPC and recovery
penalties in record order, so order invariance is only byte-exact when
the addends are exactly representable.  The strategies therefore draw
dyadic rationals (multiples of 1/64) — small enough that every partial
sum is exact — which is precisely the guarantee the engine itself
relies on: sessions re-order records into spec-expansion order
*before* aggregating, and these properties pin the reorder-then-reduce
pipeline.
"""

import json

import pytest

pytest.importorskip(
    "hypothesis",
    reason="property suite needs the optional 'test' extra "
           "(pip install .[test])")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign.aggregate import (aggregate, aggregate_structures,
                                      cells_to_json, structures_to_json,
                                      wilson_interval)
from repro.campaign.adaptive import wilson_halfwidth
from repro.campaign.store import StoreBackend, merge_stores, shard_of_key

# -- strategies -------------------------------------------------------------

OUTCOME_NAMES = ("masked", "detected_recovered", "sdc", "timeout")

#: Dyadic rationals: exactly representable, associatively summable.
dyadic = st.integers(min_value=0, max_value=512).map(lambda n: n / 64.0)


@st.composite
def trial_records(draw):
    """A list of plausible trial records with unique content keys."""
    count = draw(st.integers(min_value=1, max_value=24))
    records = []
    for index in range(count):
        workload = draw(st.sampled_from(("gcc", "go")))
        model = draw(st.sampled_from(("SS-1", "SS-2")))
        rate = draw(st.sampled_from((0.0, 1000.0, 20000.0)))
        faults = draw(st.integers(min_value=0, max_value=6))
        trial = {
            "workload": workload,
            "model": model,
            "rate_per_million": rate,
            "mix": draw(st.sampled_from(("default", "heavy"))),
            "replicate": index,
        }
        machine = draw(st.sampled_from(("", "rob64")))
        if machine:
            trial["machine"] = machine
        structure = draw(st.sampled_from(("", "rob_entry", "pc")))
        strikes = {}
        if structure:
            trial["sites"] = "sweep-%s" % structure
            trial["site_config"] = {"policy": "structure_sweep",
                                    "structure": structure,
                                    "strikes": 1}
            strikes = {structure: draw(st.integers(min_value=0,
                                                   max_value=2))}
        records.append({
            # Content-hash-shaped keys so shard_of_key's int(key, 16)
            # path is the one exercised.
            "key": "%016x" % (0xA5A5A5A5 + index),
            "trial": trial,
            "outcome": draw(st.sampled_from(OUTCOME_NAMES)),
            "faults_injected": faults,
            "faults_detected": min(faults,
                                   draw(st.integers(0, 6))),
            "rewinds": draw(st.integers(min_value=0, max_value=3)),
            "ipc": draw(dyadic),
            "avg_recovery_penalty": draw(dyadic),
            "site_strikes": strikes,
        })
    return records


# -- Wilson interval --------------------------------------------------------

@given(successes=st.integers(min_value=0, max_value=10_000),
       total=st.integers(min_value=0, max_value=10_000),
       z=st.floats(min_value=0.5, max_value=4.0,
                   allow_nan=False, allow_infinity=False))
def test_wilson_bounds_within_unit_interval(successes, total, z):
    successes = min(successes, total)
    low, high = wilson_interval(successes, total, z=z)
    assert 0.0 <= low <= high <= 1.0


@given(successes=st.integers(min_value=0, max_value=10_000),
       total=st.integers(min_value=1, max_value=10_000))
def test_wilson_contains_sample_proportion(successes, total):
    successes = min(successes, total)
    low, high = wilson_interval(successes, total)
    p = successes / total
    assert low <= p + 1e-12
    assert p <= high + 1e-12


def test_wilson_empty_sample_is_the_unit_interval():
    assert wilson_interval(0, 0) == (0.0, 1.0)
    assert wilson_halfwidth(0, 0) == 0.5


@given(successes=st.integers(min_value=0, max_value=500),
       total=st.integers(min_value=1, max_value=500),
       scale=st.integers(min_value=2, max_value=20))
def test_wilson_narrows_monotonically_with_n(successes, total, scale):
    """Same observed proportion, ``scale`` times the evidence: the
    interval must only ever tighten — the property the adaptive
    scheduler's stop rule is built on."""
    successes = min(successes, total)
    small = wilson_halfwidth(successes, total)
    large = wilson_halfwidth(successes * scale, total * scale)
    assert large <= small + 1e-12


@given(total=st.integers(min_value=1, max_value=2_000),
       successes=st.integers(min_value=0, max_value=2_000))
def test_wilson_halfwidth_matches_interval(successes, total):
    successes = min(successes, total)
    low, high = wilson_interval(successes, total)
    assert abs(wilson_halfwidth(successes, total)
               - (high - low) / 2.0) < 1e-15


# -- aggregation order invariance -------------------------------------------

@given(records=trial_records(), seed=st.randoms(use_true_random=False))
@settings(max_examples=60)
def test_aggregate_invariant_under_record_order(records, seed):
    baseline = cells_to_json(aggregate(records))
    shuffled = list(records)
    seed.shuffle(shuffled)
    assert cells_to_json(aggregate(shuffled)) == baseline


@given(records=trial_records(), seed=st.randoms(use_true_random=False))
@settings(max_examples=60)
def test_aggregate_structures_invariant_under_record_order(records,
                                                           seed):
    baseline = structures_to_json(aggregate_structures(records))
    shuffled = list(records)
    seed.shuffle(shuffled)
    assert structures_to_json(aggregate_structures(shuffled)) \
        == baseline


# -- shard-split / merge invariance -----------------------------------------

class ListStore(StoreBackend):
    """Minimal in-memory StoreBackend for merge properties (no disk,
    so Hypothesis can run hundreds of examples)."""

    def __init__(self, records=()):
        self.path = "<memory>"
        self._records = list(records)

    @property
    def exists(self):
        return True

    def truncate(self):
        self._records = []

    def append(self, record):
        self._check_key(record)
        self._records.append(record)

    def load(self):
        return list(self._records)

    def compact(self):
        merged = {}
        for record in self._records:
            merged[record["key"]] = record
        dropped = len(self._records) - len(merged)
        self._records = list(merged.values())
        return (len(merged), dropped)


@given(records=trial_records(),
       shards=st.integers(min_value=1, max_value=5))
@settings(max_examples=60)
def test_aggregate_invariant_under_shard_split_merge(records, shards):
    """Splitting a record set by key hash across N shard stores and
    merging back must aggregate byte-identically to the single-store
    run — the orchestrator's core correctness claim."""
    baseline = cells_to_json(aggregate(records))
    stores = [ListStore() for _ in range(shards)]
    for record in records:
        stores[shard_of_key(record["key"], shards)].append(record)
    merged = ListStore()
    count = merge_stores(stores, merged)
    assert count == len(records)        # keys are unique by strategy
    # The engine's contract: records are re-keyed into original
    # (spec-expansion) order before aggregation.
    by_key = {record["key"]: record for record in merged.load()}
    assert set(by_key) == {record["key"] for record in records}
    reordered = [by_key[record["key"]] for record in records]
    assert cells_to_json(aggregate(reordered)) == baseline
    assert structures_to_json(aggregate_structures(reordered)) \
        == structures_to_json(aggregate_structures(records))


@given(records=trial_records(),
       shards=st.integers(min_value=2, max_value=4))
@settings(max_examples=30)
def test_shard_split_covers_exactly_once(records, shards):
    """shard_of_key partitions: every key lands in exactly one shard."""
    assignments = [shard_of_key(record["key"], shards)
                   for record in records]
    assert all(0 <= index < shards for index in assignments)
    total = sum(
        sum(1 for a in assignments if a == index)
        for index in range(shards))
    assert total == len(records)


@given(payload_a=dyadic, payload_b=dyadic)
def test_merge_stores_last_write_wins_across_sources(payload_a,
                                                     payload_b):
    """Two sources disagreeing on one key: the later source wins, in
    argument order — the documented tie-break."""
    first = ListStore([{"key": "00000000000000aa", "ipc": payload_a}])
    second = ListStore([{"key": "00000000000000aa", "ipc": payload_b}])
    merged = ListStore()
    assert merge_stores([first, second], merged) == 1
    assert merged.load() == [{"key": "00000000000000aa",
                              "ipc": payload_b}]


@given(records=trial_records())
@settings(max_examples=30)
def test_aggregate_json_is_canonical(records):
    """cells_to_json of the same cells is byte-stable (the property
    every golden-fixture comparison in this suite rests on)."""
    cells = aggregate(records)
    assert cells_to_json(cells) == cells_to_json(aggregate(records))
    json.loads(cells_to_json(cells))     # and it is valid JSON
