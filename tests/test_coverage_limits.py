"""Coverage-limit tests: what R-way redundancy can and cannot catch.

The paper's coverage argument (Sections 3.4/3.5) is about *single-event
upsets*: one strike corrupts one redundant copy, which the commit
cross-check exposes.  Correlated multi-copy strikes are explicitly
outside the contract ("a transient failure mechanism may affect the
space redundant hardware identically, again making errors
indiscernible").  These tests pin that boundary down mechanically.
"""

from repro.core.config import (DUAL_REDUNDANT, TRIPLE_MAJORITY,
                               TRIPLE_REWIND, FTConfig)
from repro.core.detection import CommitChecker
from repro.core.faults import FaultConfig
from repro.core.rob import Group, RobEntry
from repro.functional.checker import compare_states
from repro.functional.simulator import run_functional
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.uarch.config import MachineConfig
from repro.uarch.processor import simulate
from repro.workloads.microbench import vector_sum


def _group(values, ft_checker):
    inst = Instruction(Op.ADD, rd=1, rs1=2, rs2=3)
    group = Group(0, pc=10, inst=inst, pred_npc=11)
    for copy, value in enumerate(values):
        entry = RobEntry(copy, copy, group, copy)
        entry.value = value
        entry.next_pc = 11
        group.copies.append(entry)
    return ft_checker.check(group)


class TestIdenticalDoubleStrike:
    def test_r2_cannot_see_identical_corruption(self):
        """Both copies corrupted identically: the check must pass —
        that is the documented coverage limit of duplex systems."""
        checker = CommitChecker(DUAL_REDUNDANT)
        result = _group([99, 99], checker)  # both wrong, identically
        assert result.ok  # indistinguishable from a correct result

    def test_r3_rewind_sees_two_of_three(self):
        """Rewind-only R=3 detects it: the third copy disagrees."""
        checker = CommitChecker(TRIPLE_REWIND)
        result = _group([99, 99, 5], checker)
        assert not result.ok and not result.majority

    def test_r3_majority_is_fooled_by_identical_pair(self):
        """2-of-3 majority election *elects the corrupted pair* — the
        trade-off behind the paper's configurable acceptance threshold."""
        checker = CommitChecker(TRIPLE_MAJORITY)
        result = _group([99, 99, 5], checker)
        assert result.majority
        assert result.agree_count == 2  # the corrupted pair won

    def test_unanimous_threshold_refuses_the_pair(self):
        """Threshold 3 (unanimity) turns the election back into rewind."""
        strict = FTConfig(redundancy=3, majority_election=True,
                          acceptance_threshold=3)
        checker = CommitChecker(strict)
        result = _group([99, 99, 5], checker)
        assert not result.ok and not result.majority


class TestCrashSemantics:
    def test_unprotected_machine_can_crash(self):
        """R=1 + a PC-register upset teleports committed control flow
        off the program; the engine reports a crash instead of hanging."""
        program = vector_sum(length=256)
        crashed = 0
        for seed in range(12):
            processor = simulate(
                program,
                fault_config=FaultConfig(rate_per_million=60_000,
                                         seed=seed,
                                         kind_weights={"pc": 1.0}))
            if processor.stats.crashed:
                crashed += 1
        assert crashed >= 1

    def test_protected_machine_never_crashes(self):
        """The same fault storm on SS-2 always ends in a clean halt:
        the committed next-PC continuity check catches every PC upset."""
        program = vector_sum(length=256)
        golden = run_functional(program)
        for seed in range(12):
            processor = simulate(
                program, ft=DUAL_REDUNDANT,
                fault_config=FaultConfig(rate_per_million=60_000,
                                         seed=seed,
                                         kind_weights={"pc": 1.0}))
            assert not processor.stats.crashed
            assert processor.halted
            assert compare_states(processor.arch, golden.state).clean


class TestTripleRewindSurvivesDoubleStrikes:
    def test_r3_rewind_catches_what_r2_misses(self):
        """At rates where R=2 occasionally commits identical double
        strikes, rewind-only R=3 still ends architecturally clean (any
        single surviving copy exposes the disagreement)."""
        program = vector_sum(length=256)
        golden = run_functional(program)
        config = MachineConfig(rob_size=126)
        for seed in range(6):
            processor = simulate(
                program, config=config, ft=TRIPLE_REWIND,
                fault_config=FaultConfig(rate_per_million=30_000,
                                         seed=seed))
            assert compare_states(processor.arch, golden.state).clean, \
                seed
