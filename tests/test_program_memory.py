"""Program image and main-memory substrate tests."""

import pytest

from repro.errors import SimulationError
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.memory.main_memory import MainMemory
from repro.program.image import Program


def _program(n=4):
    text = [Instruction(Op.NOP) for _ in range(n - 1)]
    text.append(Instruction(Op.HALT))
    return Program(name="p", text=text)


class TestProgram:
    def test_empty_text_rejected(self):
        with pytest.raises(ValueError):
            Program(name="p", text=[])

    def test_entry_bounds_checked(self):
        with pytest.raises(ValueError):
            Program(name="p", text=[Instruction(Op.HALT)], entry=1)

    def test_fetch_in_bounds(self):
        program = _program(4)
        assert program.fetch(0) is program.text[0]
        assert program.fetch(3) is program.text[3]

    def test_fetch_out_of_bounds_is_none(self):
        program = _program(4)
        assert program.fetch(4) is None
        assert program.fetch(-1) is None
        assert program.fetch(10 ** 9) is None

    def test_len_and_static_count(self):
        program = _program(6)
        assert len(program) == 6
        assert program.static_instruction_count == 6

    def test_disassemble(self):
        listing = _program(2).disassemble()
        assert "nop" in listing and "halt" in listing


class TestMainMemory:
    def test_image_loaded_at_zero(self):
        memory = MainMemory(16, image=[7, 8, 9])
        assert memory.peek(0) == 7
        assert memory.peek(2) == 9
        assert memory.peek(3) == 0

    def test_image_too_large_rejected(self):
        with pytest.raises(SimulationError):
            MainMemory(2, image=[1, 2, 3])

    def test_load_store(self):
        memory = MainMemory(16)
        memory.store(5, 42)
        assert memory.load(5) == 42
        assert memory.reads == 1 and memory.writes == 1

    def test_out_of_range_wraps_by_default(self):
        memory = MainMemory(16)
        memory.store(16, 9)     # wraps to 0
        assert memory.peek(0) == 9
        assert memory.load(-1) == memory.peek(15)

    def test_strict_mode_raises(self):
        memory = MainMemory(16, strict=True)
        with pytest.raises(SimulationError):
            memory.load(16)
        with pytest.raises(SimulationError):
            memory.store(-1, 0)

    def test_peek_does_not_count(self):
        memory = MainMemory(16)
        memory.peek(3)
        assert memory.reads == 0

    def test_snapshot_is_a_copy(self):
        memory = MainMemory(4)
        snap = memory.snapshot()
        memory.store(0, 5)
        assert snap[0] == 0

    def test_copy_is_independent(self):
        memory = MainMemory(4, image=[1, 2])
        clone = memory.copy()
        memory.store(0, 99)
        assert clone.peek(0) == 1

    def test_float_cells(self):
        memory = MainMemory(4)
        memory.store(1, 2.5)
        assert memory.load(1) == 2.5

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            MainMemory(0)
