"""Equivalence suite: the optimized engine (with and without cycle
skipping) must produce PipelineStats byte-identical to the frozen
pre-overhaul ReferenceProcessor — across redundancy 1/2/3, fault and
no-fault runs, crashes, and deadlocks (which must fire at the same
cycle)."""

import pytest

from repro.core.faults import FaultConfig
from repro.errors import SimulationError
from repro.models.presets import get_model
from repro.uarch.processor import Processor
from repro.uarch.reference import ReferenceProcessor
from repro.workloads.generator import build_workload

INSTRUCTIONS = 800
MAX_CYCLES = 120_000


def _stats(processor_class, program, model, rate, seed,
           cycle_skipping=True, config=None):
    config = config or model.config
    if not cycle_skipping:
        config = config.derive(cycle_skipping=False)
    fault_config = None
    if rate:
        fault_config = FaultConfig(rate_per_million=rate, seed=seed)
    processor = processor_class(program, config=config, ft=model.ft,
                                fault_config=fault_config)
    processor.run(max_instructions=INSTRUCTIONS, max_cycles=MAX_CYCLES)
    return processor.stats.as_dict()


@pytest.mark.parametrize("workload", ["gcc", "fpppp"])
@pytest.mark.parametrize("model_name", ["SS-1", "SS-2", "SS-3"])
@pytest.mark.parametrize("rate", [0.0, 3_000.0, 30_000.0])
def test_stats_byte_identical(workload, model_name, rate):
    program = build_workload(workload)
    model = get_model(model_name)
    reference = _stats(ReferenceProcessor, program, model, rate, 42)
    skipping = _stats(Processor, program, model, rate, 42)
    stepped = _stats(Processor, program, model, rate, 42,
                     cycle_skipping=False)
    assert skipping == reference
    assert stepped == reference


def test_skipping_is_exercised():
    """The fast path must actually skip cycles on a stall-heavy run."""
    program = build_workload("fpppp")
    model = get_model("SS-2")
    processor = Processor(program, config=model.config, ft=model.ft)
    stepped = 0
    original_step = processor.step

    def counting_step():
        nonlocal stepped
        stepped += 1
        original_step()

    processor.step = counting_step
    processor.run(max_instructions=INSTRUCTIONS, max_cycles=MAX_CYCLES)
    assert stepped < processor.cycle, \
        "cycle skipping never engaged (stepped every cycle)"


@pytest.mark.parametrize("cycle_skipping", [True, False])
def test_deadlock_fires_at_reference_cycle(cycle_skipping):
    """MSHR starvation deadlocks; all engines abort at the same cycle."""
    program = build_workload("gcc")
    model = get_model("SS-2")
    config = model.config.derive(mshr_count=0, deadlock_cycles=400)

    def deadlock_cycle(processor_class, skipping):
        cfg = config if skipping else config.derive(cycle_skipping=False)
        processor = processor_class(program, config=cfg, ft=model.ft)
        with pytest.raises(SimulationError, match="deadlock"):
            processor.run(max_instructions=INSTRUCTIONS,
                          max_cycles=MAX_CYCLES)
        return processor.cycle, processor.stats.as_dict()

    ref_cycle, ref_stats = deadlock_cycle(ReferenceProcessor, True)
    opt_cycle, opt_stats = deadlock_cycle(Processor, cycle_skipping)
    assert opt_cycle == ref_cycle
    ref_stats.pop("cycles")
    opt_stats.pop("cycles")   # set by run(); the raise bypasses it
    assert opt_stats == ref_stats


def test_max_cycles_cutoff_identical():
    """A cycle-budget exit lands on the same cycle with skipping on."""
    program = build_workload("fpppp")
    model = get_model("SS-2")
    for budget in (137, 500, 1_234):
        runs = []
        for processor_class, skipping in ((ReferenceProcessor, True),
                                          (Processor, True),
                                          (Processor, False)):
            cfg = model.config if skipping \
                else model.config.derive(cycle_skipping=False)
            p = processor_class(program, config=cfg, ft=model.ft)
            p.run(max_cycles=budget)
            runs.append((p.cycle, p.stats.as_dict()))
        assert runs[0] == runs[1] == runs[2]


def test_step_api_unaffected_by_skip_flag():
    """Manual step() never skips, regardless of the config flag."""
    program = build_workload("gcc")
    model = get_model("SS-1")
    processor = Processor(program, config=model.config, ft=model.ft)
    for expected in range(1, 21):
        processor.step()
        assert processor.cycle == expected
