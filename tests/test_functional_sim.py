"""In-order functional simulator tests (the golden model itself)."""

import pytest

from repro.errors import SimulationError
from repro.functional.simulator import FunctionalSimulator, run_functional
from repro.isa.assembler import assemble
from repro.isa.opcodes import Op
from repro.workloads.microbench import (branch_pattern, dot_product,
                                        fibonacci, pointer_chase,
                                        vector_sum)


class TestMicrobenchmarks:
    def test_vector_sum(self):
        program = vector_sum(length=32, seed=5)
        sim = run_functional(program)
        assert sim.state.memory.peek(32) == sum(program.data[:32])

    def test_fibonacci(self):
        sim = run_functional(fibonacci(n=12))
        assert sim.state.memory.peek(0) == 144

    def test_dot_product(self):
        program = dot_product(length=8, seed=2)
        sim = run_functional(program)
        a = program.data[:8]
        b = program.data[8:16]
        expected = sum(x * y for x, y in zip(a, b))
        assert sim.state.memory.peek(200) == pytest.approx(expected)

    def test_pointer_chase_returns_to_start(self):
        program = pointer_chase(length=64, seed=9)
        sim = run_functional(program)
        # After exactly `length` hops around a full cycle we are back
        # at node 0.
        assert sim.state.memory.peek(64) == 0

    def test_branch_pattern_counts_taken(self):
        sim = run_functional(branch_pattern(iterations=30, period=3))
        assert sim.state.memory.peek(0) > 0


class TestExecutionControl:
    def test_step_returns_false_after_halt(self):
        sim = FunctionalSimulator(assemble("halt"))
        assert sim.step() is False
        assert sim.state.halted
        assert sim.step() is False

    def test_instret_counts_halt(self):
        sim = FunctionalSimulator(assemble("nop\nhalt"))
        sim.run()
        assert sim.instret == 2

    def test_budget_exhaustion_raises(self):
        source = "loop: j loop\nhalt"
        with pytest.raises(SimulationError):
            run_functional(assemble(source), max_instructions=100)

    def test_pc_off_text_raises(self):
        sim = FunctionalSimulator(assemble("j 99\nhalt"))
        sim.step()
        with pytest.raises(SimulationError):
            sim.step()

    def test_r0_is_immutable(self):
        sim = run_functional(assemble("addi r0, r0, 5\nhalt"))
        assert sim.state.read_reg(0) == 0


class TestCallReturn:
    def test_jal_jr_round_trip(self):
        source = """
            jal r31, func
            sw  r1, 0(r0)
            halt
        func:
            addi r1, r0, 77
            jr r31
        """
        sim = run_functional(assemble(source))
        assert sim.state.memory.peek(0) == 77

    def test_jalr_indirect_call(self):
        source = """
            addi r5, r0, 4
            jalr r31, r5
            halt
            nop
            addi r1, r0, 9
            jr r31
        """
        sim = run_functional(assemble(source))
        assert sim.state.read_reg(1) == 9


class TestMixCounters:
    def test_categories_sum_to_total(self):
        program = vector_sum(length=16)
        sim = run_functional(program)
        mix = sim.mix
        assert (mix.mem_ops + mix.int_ops + mix.fp_add + mix.fp_mult
                + mix.fp_div) == mix.total

    def test_fp_classification(self):
        source = """
            addi r1, r0, 2
            cvtif f1, r1
            fadd f2, f1, f1
            fmul f3, f1, f1
            fdiv f4, f1, f1
            fsqrt f5, f1
            halt
        """
        sim = run_functional(assemble(source))
        assert sim.mix.fp_add == 2   # cvtif + fadd
        assert sim.mix.fp_mult == 1
        assert sim.mix.fp_div == 2   # fdiv + fsqrt

    def test_branch_counter(self):
        sim = run_functional(fibonacci(n=10))
        assert sim.mix.branches == 8

    def test_percentages_sum_to_100(self):
        sim = run_functional(fibonacci(n=10))
        assert sum(sim.mix.percentages()) == pytest.approx(100.0)

    def test_by_op_counter(self):
        sim = run_functional(assemble("nop\nnop\nhalt"))
        assert sim.mix.by_op[Op.NOP] == 2
