"""Sphere-of-replication audit tests."""

from repro.core.sphere import (FT_COVERAGE, PROTECTION_ECC,
                               PROTECTION_NONE, PROTECTION_REPLICATION,
                               UNPROTECTED_COVERAGE, audit,
                               coverage_table)


class TestFtCoverage:
    def test_no_correctness_gaps_in_ft_mode(self):
        _, uncovered = audit(FT_COVERAGE)
        assert uncovered == []

    def test_speculative_domain_is_replicated(self):
        for item in FT_COVERAGE:
            if item.domain == "speculative":
                assert item.protection == PROTECTION_REPLICATION, item

    def test_committed_domain_is_ecc(self):
        for item in FT_COVERAGE:
            if item.domain == "committed":
                assert item.protection == PROTECTION_ECC, item

    def test_hints_may_be_unprotected(self):
        unprotected = [item for item in FT_COVERAGE
                       if item.protection == PROTECTION_NONE]
        assert unprotected
        assert all(item.domain == "hint" for item in unprotected)

    def test_inventory_names_paper_structures(self):
        names = " ".join(item.name for item in FT_COVERAGE)
        for required in ("reorder buffer", "rename map",
                         "committed next-PC", "fetch queue",
                         "branch target buffer"):
            assert required in names


class TestUnprotectedCoverage:
    def test_r1_loses_speculative_protection(self):
        _, uncovered = audit(UNPROTECTED_COVERAGE)
        assert len(uncovered) == 4
        assert all(item.domain == "speculative" for item in uncovered)

    def test_committed_ecc_survives_mode_switch(self):
        for item in UNPROTECTED_COVERAGE:
            if item.domain == "committed":
                assert item.protection == PROTECTION_ECC


class TestTable:
    def test_coverage_table_renders(self):
        table = coverage_table()
        assert "structure" in table
        assert len(table.splitlines()) == len(FT_COVERAGE) + 1
