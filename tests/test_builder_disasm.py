"""ProgramBuilder and disassembler tests."""

import pytest

from repro.errors import AssemblerError
from repro.isa.assembler import assemble
from repro.isa.builder import ProgramBuilder
from repro.isa.disasm import disassemble, format_instruction
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op


class TestBuilder:
    def test_forward_label_fixup(self):
        builder = ProgramBuilder()
        builder.branch(Op.BEQ, rs1=1, rs2=0, target="end")
        builder.nop()
        builder.label("end")
        builder.halt()
        program = builder.build()
        assert program.text[0].imm == 1

    def test_backward_label(self):
        builder = ProgramBuilder()
        builder.label("top")
        builder.emit(Op.ADDI, rd=1, rs1=1, imm=-1)
        builder.branch(Op.BNE, rs1=1, rs2=0, target="top")
        builder.halt()
        assert builder.build().text[1].imm == -2

    def test_jump_with_link(self):
        builder = ProgramBuilder()
        builder.jump("func", link_reg=31)
        builder.halt()
        builder.label("func")
        builder.emit(Op.JR, rs1=31)
        program = builder.build()
        assert program.text[0].op == Op.JAL
        assert program.text[0].imm == 2

    def test_numeric_branch_target(self):
        builder = ProgramBuilder()
        builder.branch(Op.BEQ, rs1=0, rs2=0, target=0)
        builder.halt()
        assert builder.build().text[0].imm == -1

    def test_data_words_and_space(self):
        builder = ProgramBuilder()
        first = builder.word(1, 2, 3)
        second = builder.space(4, fill=9)
        builder.halt()
        program = builder.build()
        assert first == 0 and second == 3
        assert program.data == [1, 2, 3, 9, 9, 9, 9]

    def test_undefined_label_raises_at_build(self):
        builder = ProgramBuilder()
        builder.branch(Op.BNE, rs1=1, rs2=0, target="missing")
        builder.halt()
        with pytest.raises(AssemblerError):
            builder.build()

    def test_duplicate_label_rejected(self):
        builder = ProgramBuilder()
        builder.label("a")
        with pytest.raises(AssemblerError):
            builder.label("a")

    def test_non_branch_op_rejected_in_branch(self):
        builder = ProgramBuilder()
        with pytest.raises(AssemblerError):
            builder.branch(Op.ADD, rs1=1, rs2=2, target="x")

    def test_pc_property_tracks_emission(self):
        builder = ProgramBuilder()
        assert builder.pc == 0
        builder.nop()
        assert builder.pc == 1


class TestDisassembler:
    @pytest.mark.parametrize("source", [
        "add r1, r2, r3",
        "addi r1, r2, -7",
        "lw r4, 12(r5)",
        "sw r4, -8(r5)",
        "flw f2, 4(r1)",
        "beq r1, r2, 3",
        "jal r31, 7",
        "jr r31",
        "jalr r31, r5",
        "fadd f1, f2, f3",
        "nop",
        "halt",
    ])
    def test_disassembly_reassembles_identically(self, source):
        program = assemble(source + "\nhalt")
        text = format_instruction(program.text[0])
        reassembled = assemble(text + "\nhalt")
        assert reassembled.text[0] == program.text[0]

    def test_disassemble_listing(self):
        listing = disassemble([Instruction(Op.NOP),
                               Instruction(Op.HALT)], start_pc=10)
        lines = listing.splitlines()
        assert lines[0].strip().startswith("10:")
        assert "halt" in lines[1]
