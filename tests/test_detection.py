"""Commit-stage cross-checker tests (the paper's fault detection)."""

from repro.core.config import (DUAL_REDUNDANT, TRIPLE_MAJORITY, FTConfig)
from repro.core.detection import CommitChecker
from repro.core.rob import Group, RobEntry
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op


def _group(redundancy, op=Op.ADD, values=None, next_pcs=None, addrs=None,
           store_vals=None):
    if op == Op.ADD:
        inst = Instruction(op, rd=1, rs1=2, rs2=3)
    elif op == Op.SW:
        inst = Instruction(op, rs1=2, rs2=3, imm=0)
    else:
        inst = Instruction(op, rs1=1, rs2=2, imm=4)
    group = Group(0, pc=10, inst=inst, pred_npc=11)
    for copy in range(redundancy):
        entry = RobEntry(copy, copy, group, copy)
        entry.value = values[copy] if values else None
        entry.next_pc = next_pcs[copy] if next_pcs else 11
        entry.addr = addrs[copy] if addrs else None
        entry.store_val = store_vals[copy] if store_vals else None
        group.copies.append(entry)
    return group


class TestDualRedundant:
    def test_agreement_passes(self):
        checker = CommitChecker(DUAL_REDUNDANT)
        result = checker.check(_group(2, values=[5, 5]))
        assert result.ok and result.representative == 0
        assert result.agree_count == 2

    def test_value_mismatch_detected(self):
        checker = CommitChecker(DUAL_REDUNDANT)
        result = checker.check(_group(2, values=[5, 6]))
        assert not result.ok and not result.majority
        assert "value" in result.mismatched_fields

    def test_next_pc_mismatch_detected(self):
        checker = CommitChecker(DUAL_REDUNDANT)
        result = checker.check(_group(2, values=[5, 5],
                                      next_pcs=[11, 99]))
        assert not result.ok
        assert "next_pc" in result.mismatched_fields

    def test_address_mismatch_detected(self):
        checker = CommitChecker(DUAL_REDUNDANT)
        group = _group(2, op=Op.SW, addrs=[100, 108],
                       store_vals=[7, 7])
        result = checker.check(group)
        assert not result.ok
        assert "addr" in result.mismatched_fields

    def test_store_data_mismatch_detected(self):
        checker = CommitChecker(DUAL_REDUNDANT)
        group = _group(2, op=Op.SW, addrs=[100, 100],
                       store_vals=[7, 8])
        result = checker.check(group)
        assert not result.ok
        assert "store_val" in result.mismatched_fields

    def test_mismatch_statistics(self):
        checker = CommitChecker(DUAL_REDUNDANT)
        checker.check(_group(2, values=[5, 5]))
        checker.check(_group(2, values=[5, 6]))
        assert checker.checks == 2 and checker.mismatches == 1

    def test_float_nan_agreement(self):
        checker = CommitChecker(DUAL_REDUNDANT)
        nan = float("nan")
        result = checker.check(_group(2, values=[nan, nan]))
        assert result.ok


class TestMajorityElection:
    def test_single_corruption_elects_majority(self):
        checker = CommitChecker(TRIPLE_MAJORITY)
        result = checker.check(_group(3, values=[5, 99, 5]))
        assert not result.ok and result.majority
        assert result.representative in (0, 2)
        assert result.agree_count == 2

    def test_majority_representative_has_correct_value(self):
        checker = CommitChecker(TRIPLE_MAJORITY)
        group = _group(3, values=[99, 5, 5])
        result = checker.check(group)
        assert group.copies[result.representative].value == 5

    def test_no_majority_forces_rewind(self):
        checker = CommitChecker(TRIPLE_MAJORITY)
        result = checker.check(_group(3, values=[1, 2, 3]))
        assert not result.ok and not result.majority

    def test_rewind_only_mode_never_elects(self):
        checker = CommitChecker(FTConfig(redundancy=3))
        result = checker.check(_group(3, values=[5, 99, 5]))
        assert not result.ok and not result.majority

    def test_unanimous_threshold(self):
        strict = FTConfig(redundancy=3, majority_election=True,
                          acceptance_threshold=3)
        checker = CommitChecker(strict)
        result = checker.check(_group(3, values=[5, 99, 5]))
        assert not result.ok and not result.majority  # 2 < threshold 3

    def test_all_three_agree(self):
        checker = CommitChecker(TRIPLE_MAJORITY)
        result = checker.check(_group(3, values=[5, 5, 5]))
        assert result.ok and result.agree_count == 3
