"""Smoke tests: every `repro-ft` subcommand runs and prints something."""

import os

import pytest

from repro.harness.cli import _COMMANDS, build_parser, main

#: Per-command argument lists sized for a fast smoke run.
SMOKE_ARGS = {
    "table1": [],
    "table2": ["--instructions", "800"],
    "figure3": [],
    "figure4": [],
    "figure5": ["--benchmarks", "go", "--instructions", "600"],
    "figure6": ["--benchmark", "go", "--instructions", "400"],
    "sensitivity": ["--benchmarks", "go", "--instructions", "500"],
    "coverage": [],
    "demo": ["--instructions", "600"],
    "campaign": ["--workloads", "gcc", "--models", "SS-2",
                 "--rates", "0,3000", "--replicates", "2",
                 "--instructions", "400", "--quiet"],
    "orchestrate": ["--shards", "2",
                    "--store-dir", "{tmpdir}",    # filled per test run
                    "--workloads", "gcc", "--models", "SS-2",
                    "--rates", "0,3000", "--replicates", "2",
                    "--instructions", "400", "--poll-interval", "0.05",
                    "--quiet"],
    "faults": ["--list"],
    "bench": ["--quick", "--out", ""],
    # Zero-op schedule: exercises the full clean-run/chaos-run/compare
    # machinery without waiting on fault fire times.  Real disturbed
    # runs live in tests/test_chaos.py and the chaos-smoke CI job.
    "chaos": ["--target", "orchestrate", "--dir", "{tmpdir}",
              "--shards", "2", "--kills", "0", "--stalls", "0",
              "--torn", "0"],
    # The service pair cannot smoke in-process: `serve` runs until
    # signalled and `load` needs a live service.  Both are exercised
    # end to end (real subprocess, real sockets) in
    # tests/test_service_server.py and tests/test_loadgen.py.
    "serve": None,
    "load": None,
    # The static analyzer over the installed src tree (must be clean).
    "lint": [],
}


def test_smoke_args_cover_every_command():
    assert set(SMOKE_ARGS) == set(_COMMANDS)


@pytest.mark.parametrize("command", sorted(_COMMANDS))
def test_subcommand_smoke(command, capsys, tmp_path):
    if SMOKE_ARGS[command] is None:
        pytest.skip("%s is covered by the service e2e suite" % command)
    args = [arg.replace("{tmpdir}", str(tmp_path))
            for arg in SMOKE_ARGS[command]]
    exit_code = main([command] + args)
    assert exit_code == 0
    out = capsys.readouterr().out
    assert out.strip(), "%s printed nothing" % command


class TestParser:
    def test_missing_command_is_an_error(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_is_an_error(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nosuch"])


class TestCampaignCli:
    def test_resume_requires_out(self):
        with pytest.raises(SystemExit):
            main(["campaign", "--resume"])

    @pytest.mark.parametrize("bad_args", [
        ["--mixes", "nosuch"],
        ["--workloads", "notabench"],
        ["--rates", "0,abc"],
        ["--replicates", "0"],
        ["--workers", "0"],
        ["--spec", "/nonexistent/spec.json"],
        ["--rates", "0,1000,1000"],
    ])
    def test_bad_input_exits_with_message(self, bad_args, capsys):
        # Every input error is a one-line message, not a traceback.
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "--quiet"] + bad_args)
        assert "repro-ft campaign:" in str(excinfo.value)

    def test_out_without_resume_refuses_nonempty_store(self, tmp_path):
        out = str(tmp_path / "r.jsonl")
        args = ["campaign", "--workloads", "gcc", "--models", "SS-2",
                "--rates", "0", "--replicates", "1",
                "--instructions", "300", "--quiet", "--out", out]
        main(args)
        with pytest.raises(SystemExit) as excinfo:
            main(args)  # no --resume: must refuse, not wipe
        assert "already holds completed trials" in str(excinfo.value)

    def test_json_output(self, capsys):
        import json
        main(["campaign", "--workloads", "gcc", "--models", "SS-2",
              "--rates", "0", "--replicates", "1",
              "--instructions", "300", "--quiet", "--json"])
        cells = json.loads(capsys.readouterr().out)
        assert cells[0]["workload"] == "gcc"
        assert cells[0]["n"] == 1

    def test_json_stdout_stays_parseable_with_progress(self, capsys):
        # Progress lines go to stderr, so `--json > out.json` works
        # without --quiet.
        import json
        main(["campaign", "--workloads", "gcc", "--models", "SS-2",
              "--rates", "0", "--replicates", "2",
              "--instructions", "300", "--json"])
        captured = capsys.readouterr()
        assert json.loads(captured.out)
        assert "[1/2]" in captured.err

    def test_store_and_resume_flow(self, tmp_path, capsys):
        out = str(tmp_path / "r.jsonl")
        args = ["campaign", "--workloads", "gcc", "--models", "SS-2",
                "--rates", "0,3000", "--replicates", "2",
                "--instructions", "300", "--quiet", "--out", out]
        main(args)
        first = capsys.readouterr().out
        assert "executed 4, resumed (skipped) 0" in first
        main(args + ["--resume"])
        second = capsys.readouterr().out
        assert "executed 0, resumed (skipped) 4" in second

    def test_spec_file(self, tmp_path, capsys):
        import json
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(
            {"workloads": ["gcc"], "models": ["SS-2"],
             "rates_per_million": [0.0], "replicates": 2,
             "instructions": 300, "mixes": ["default"]}))
        exit_code = main(["campaign", "--spec", str(spec_path),
                          "--quiet"])
        assert exit_code == 0
        assert "2 trials" in capsys.readouterr().out


class TestCampaignCliV2:
    BASE = ["campaign", "--workloads", "gcc", "--models", "SS-2",
            "--rates", "0,3000", "--replicates", "2",
            "--instructions", "300", "--quiet"]

    def test_sqlite_store_and_resume(self, tmp_path, capsys):
        url = "sqlite:" + str(tmp_path / "r.db")
        main(self.BASE + ["--store", url])
        assert "executed 4, resumed (skipped) 0" \
            in capsys.readouterr().out
        main(self.BASE + ["--store", url, "--resume"])
        assert "executed 0, resumed (skipped) 4" \
            in capsys.readouterr().out

    def test_sharded_store(self, tmp_path, capsys):
        url = "shard:2:" + str(tmp_path / "results")
        main(self.BASE + ["--store", url])
        assert "executed 4" in capsys.readouterr().out
        files = sorted(os.listdir(str(tmp_path / "results")))
        assert files == ["shard-000.jsonl", "shard-001.jsonl"]

    def test_shard_runs_cover_grid_once(self, tmp_path, capsys):
        import json
        outs = []
        for index in (0, 1):
            out = str(tmp_path / ("half%d.jsonl" % index))
            main(self.BASE + ["--shard", "%d/2" % index,
                              "--store", out])
            capsys.readouterr()
            outs.append(out)
        keys = []
        for out in outs:
            with open(out) as handle:
                keys += [json.loads(line)["key"] for line in handle]
        assert len(keys) == 4               # full grid, split once
        assert len(set(keys)) == 4

    def test_bad_shard_exits_with_message(self, capsys):
        for flag in ("2/2", "x/2", "0-2"):
            with pytest.raises(SystemExit) as excinfo:
                main(self.BASE + ["--shard", flag])
            assert "repro-ft campaign:" in str(excinfo.value)

    def test_override_axis(self, capsys):
        import json
        main(self.BASE[:-1] + ["--rates", "0", "--replicates", "1",
                               "--override", "rob8:rob_size=8",
                               "--override", "base:",
                               "--json", "--quiet"])
        cells = json.loads(capsys.readouterr().out)
        assert sorted(cell["machine"] for cell in cells) \
            == ["base", "rob8"]

    def test_override_extends_spec_file_axis(self, tmp_path, capsys):
        import json
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(
            {"workloads": ["gcc"], "models": ["SS-2"],
             "rates_per_million": [0.0], "replicates": 1,
             "instructions": 300,
             "machine_overrides": {"base": {},
                                   "rob64": {"rob_size": 64}}}))
        main(["campaign", "--spec", str(spec_path), "--quiet",
              "--override", "alu8:int_alu=8", "--json"])
        cells = json.loads(capsys.readouterr().out)
        # The CLI cell is ADDED to the file's axis, not replacing it.
        assert sorted(cell["machine"] for cell in cells) \
            == ["alu8", "base", "rob64"]
        # A name collision is ambiguous and refused.
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "--spec", str(spec_path), "--quiet",
                  "--override", "rob64:rob_size=32"])
        assert "already defined by --spec" in str(excinfo.value)

    def test_bad_override_exits_with_message(self):
        for flag in ("rob_szie=8", "rob8:rob_size", "rob8:=8"):
            with pytest.raises(SystemExit) as excinfo:
                main(self.BASE + ["--override", flag])
            assert "repro-ft campaign:" in str(excinfo.value)

    def test_compact(self, tmp_path, capsys):
        import json
        from repro.campaign import JSONLStore
        path = str(tmp_path / "r.jsonl")
        store = JSONLStore(path)
        store.append({"key": "aaaa", "outcome": "masked", "ipc": 1.0})
        store.append({"key": "aaaa", "outcome": "masked", "ipc": 2.0})
        store.append({"key": "bbbb", "outcome": "sdc"})
        with open(path, "a") as handle:
            handle.write('{"key": "torn')
        main(["campaign", "--store", path, "--compact"])
        out = capsys.readouterr().out
        assert "kept 2" in out
        assert "dropped 2" in out
        lines = [json.loads(line)
                 for line in open(path) if line.strip()]
        assert [line["key"] for line in lines] == ["aaaa", "bbbb"]
        assert lines[0]["ipc"] == 2.0

    def test_compact_requires_store(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "--compact"])
        assert "--compact requires --store" in str(excinfo.value)

    def test_out_remains_an_alias(self, tmp_path, capsys):
        out = str(tmp_path / "r.jsonl")
        main(self.BASE + ["--out", out])
        assert "store: %s" % out in capsys.readouterr().out


class TestBenchCli:
    def test_quick_bench_writes_json(self, tmp_path, capsys):
        import json
        out = tmp_path / "BENCH_simulator.json"
        exit_code = main(["bench", "--quick", "--out", str(out)])
        assert exit_code == 0
        assert "speedup" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["quick"] is True
        assert payload["campaign"]["identical_records"] is True
        assert payload["campaign"]["reference_seconds"] > 0
        assert payload["campaign"]["optimized_seconds"] > 0
        assert payload["engine"]["rows"]

    def test_json_flag_prints_payload(self, capsys):
        import json
        exit_code = main(["bench", "--quick", "--out", "", "--json"])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["campaign"]["trials"] == 8

    def test_bench_out_appends_history(self, tmp_path, capsys):
        # BENCH_simulator.json is an append-per-PR history: a re-run
        # keeps the previous entry under "history" while the top level
        # stays the latest entry (v1 schema compatible).
        import json
        out = tmp_path / "BENCH_simulator.json"
        main(["bench", "--quick", "--out", str(out)])
        first = json.loads(out.read_text())
        assert "history" not in first
        main(["bench", "--quick", "--out", str(out)])
        capsys.readouterr()
        second = json.loads(out.read_text())
        assert second["campaign"]["identical_records"] is True
        assert second["engine"]["rows"]
        assert len(second["history"]) == 1
        previous = second["history"][0]
        assert previous["generated_at"] == first["generated_at"]
        assert "history" not in previous
