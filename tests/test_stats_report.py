"""PipelineStats and renamer unit tests."""

import pytest

from repro.core.rob import Group
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.uarch.rename import (AssociativeRenamer, MapTableRenamer,
                                make_renamer)
from repro.uarch.stats import PipelineStats


class TestPipelineStats:
    def test_ipc_cpi(self):
        stats = PipelineStats(cycles=100, instructions=250)
        assert stats.ipc == pytest.approx(2.5)
        assert stats.cpi == pytest.approx(0.4)

    def test_zero_guards(self):
        stats = PipelineStats()
        assert stats.ipc == 0.0
        assert stats.cpi == 0.0
        assert stats.avg_recovery_penalty == 0.0
        assert stats.branch_accuracy == 1.0

    def test_branch_accuracy(self):
        stats = PipelineStats(branches_committed=100,
                              branch_mispredicts=7)
        assert stats.branch_accuracy == pytest.approx(0.93)

    def test_avg_occupancy(self):
        stats = PipelineStats(cycles=10, rob_occupancy_sum=500)
        assert stats.avg_rob_occupancy == pytest.approx(50.0)

    def test_recovery_penalty(self):
        stats = PipelineStats(rewinds=4, recovery_cycles=100)
        assert stats.avg_recovery_penalty == pytest.approx(25.0)

    def test_summary_renders(self):
        stats = PipelineStats(cycles=10, instructions=20)
        text = stats.summary()
        assert "IPC" in text and "2.0000" in text

    def test_summary_includes_fault_block_when_relevant(self):
        quiet = PipelineStats(cycles=10, instructions=20)
        assert "rewinds" not in quiet.summary()
        noisy = PipelineStats(cycles=10, instructions=20, rewinds=2,
                              faults_injected=3, faults_detected=2)
        assert "rewinds" in noisy.summary()


def _group(gseq, dest):
    inst = Instruction(Op.ADDI, rd=dest, rs1=0, imm=gseq)
    return Group(gseq, pc=gseq, inst=inst, pred_npc=gseq + 1)


class TestMapTableRenamer:
    def test_lookup_unmapped_is_none(self):
        assert MapTableRenamer().lookup(5) is None

    def test_set_and_lookup(self):
        renamer = MapTableRenamer()
        group = _group(0, dest=5)
        renamer.set_dest(5, group)
        assert renamer.lookup(5) is group

    def test_r0_never_mapped(self):
        renamer = MapTableRenamer()
        renamer.set_dest(0, _group(0, dest=1))
        assert renamer.lookup(0) is None

    def test_commit_clears_only_own_mapping(self):
        renamer = MapTableRenamer()
        old, new = _group(0, 5), _group(1, 5)
        renamer.set_dest(5, old)
        renamer.set_dest(5, new)
        renamer.on_commit(5, old)   # stale: must not clear
        assert renamer.lookup(5) is new
        renamer.on_commit(5, new)
        assert renamer.lookup(5) is None

    def test_rebuild_prefers_youngest(self):
        renamer = MapTableRenamer()
        groups = [_group(0, 5), _group(1, 5), _group(2, 6)]
        renamer.rebuild(groups)
        assert renamer.lookup(5) is groups[1]
        assert renamer.lookup(6) is groups[2]

    def test_clear(self):
        renamer = MapTableRenamer()
        renamer.set_dest(5, _group(0, 5))
        renamer.clear()
        assert renamer.lookup(5) is None


class TestAssociativeRenamer:
    def test_searches_youngest_first(self):
        window = [_group(0, 5), _group(1, 5)]
        renamer = AssociativeRenamer(window)
        assert renamer.lookup(5) is window[1]

    def test_miss_returns_none(self):
        renamer = AssociativeRenamer([_group(0, 5)])
        assert renamer.lookup(6) is None
        assert renamer.lookup(0) is None

    def test_window_shrinks_naturally(self):
        window = [_group(0, 5)]
        renamer = AssociativeRenamer(window)
        window.pop()
        assert renamer.lookup(5) is None

    def test_factory(self):
        window = []
        assert isinstance(make_renamer("map", window), MapTableRenamer)
        assert isinstance(make_renamer("associative", window),
                          AssociativeRenamer)
        with pytest.raises(ValueError):
            make_renamer("bogus", window)
