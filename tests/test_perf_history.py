"""The bench history file: lossless migration, strict validation.

The load-bearing promise of :mod:`repro.perf.history` is that it
*never rewrites the past*: loading ``BENCH_simulator.json`` — any
generation, including the file committed in this repository — and
saving it back reproduces the bytes exactly.  v1/v2 entries are
migrated by synthesising sample views on access, not by touching the
stored dicts.  The other promise is the opposite of silence: a torn
write or a hand edit raises :class:`~repro.errors.HistoryError`
naming the entry and the field, because quietly dropping seven PRs of
measured trajectory would defeat the regression gate built on it.
"""

import json
import os

import pytest

from repro.errors import HistoryError
from repro.perf.history import (MAX_HISTORY, SCHEMA_VERSION, BenchEntry,
                                BenchHistory, host_fingerprint,
                                validate_entry)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
COMMITTED = os.path.join(REPO_ROOT, "BENCH_simulator.json")


def serialize(payload):
    """Exactly the byte layout :meth:`BenchHistory.save` writes."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def make_entry(version=SCHEMA_VERSION, generated="2026-08-07T00:00:00+0000",
               plat="linux-test", python="3.11.0", optimized=None,
               reference=None, phases=None, spec=None, note="",
               quick=False, trials=64):
    """A synthetic valid entry; v3 unless ``version`` says otherwise.

    ``optimized`` / ``reference`` are per-repeat second lists; v1/v2
    entries keep only the derived point values, the way real old
    entries do.
    """
    optimized = optimized or [1.0, 1.05, 1.1]
    reference = reference or [4.0, 4.2, 4.4]
    best_opt = min(optimized)
    best_ref = min(reference)
    campaign = {
        "spec": spec or {"name": "fixture", "instructions": 600},
        "trials": trials,
        "optimized_seconds": round(best_opt, 6),
        "reference_seconds": round(best_ref, 6),
        "optimized_trials_per_sec": round(trials / best_opt, 3),
        "reference_trials_per_sec": round(trials / best_ref, 3),
        "speedup": round(best_ref / best_opt, 3),
    }
    host = {"platform": plat, "python": python}
    if version >= 3:
        campaign["optimized_sample_seconds"] = list(optimized)
        campaign["reference_sample_seconds"] = list(reference)
        campaign["optimized_phase_sample_seconds"] = phases or {
            "decode": [0.1] * len(optimized),
            "simulate": [0.7] * len(optimized),
        }
        host["fingerprint"] = host_fingerprint(plat, python)
    entry = {
        "version": version,
        "generated_at": generated,
        "quick": quick,
        "host": host,
        "engine": {"instructions": 600, "rows": []},
        "campaign": campaign,
    }
    if note:
        entry["note"] = note
    return entry


# -- lossless round trips ---------------------------------------------------

def test_committed_history_round_trips_byte_for_byte():
    """The real file, as committed: load -> save must be the identity.

    This is the acceptance criterion that matters most — the v1 entry
    at the bottom of the history and every v2 entry above it must
    survive re-serialization untouched.
    """
    with open(COMMITTED, encoding="utf-8") as handle:
        original = handle.read()
    history = BenchHistory.load(COMMITTED)
    assert len(history) >= 7
    assert history[0].version == 1           # the seed's single entry
    assert serialize(history.to_payload()) == original


def test_v1_single_entry_file_round_trips(tmp_path):
    path = str(tmp_path / "bench.json")
    v1 = make_entry(version=1, generated="2026-07-01T00:00:00+0000")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(serialize(v1))
    history = BenchHistory.load(path)
    assert len(history) == 1
    assert history[0].version == 1
    assert serialize(history.to_payload()) == serialize(v1)


def test_v2_history_round_trips_and_orders_oldest_first(tmp_path):
    path = str(tmp_path / "bench.json")
    oldest = make_entry(version=1, generated="2026-07-01T00:00:00+0000")
    middle = make_entry(version=2, generated="2026-07-10T00:00:00+0000")
    latest = dict(make_entry(version=2,
                             generated="2026-07-20T00:00:00+0000"))
    latest["history"] = [oldest, middle]
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(serialize(latest))
    history = BenchHistory.load(path)
    assert [entry.generated_at for entry in history] == [
        "2026-07-01T00:00:00+0000", "2026-07-10T00:00:00+0000",
        "2026-07-20T00:00:00+0000"]
    assert [entry.index for entry in history] == [0, 1, 2]
    assert serialize(history.to_payload()) == serialize(latest)


def test_append_save_reload_identity(tmp_path):
    path = str(tmp_path / "bench.json")
    history = BenchHistory.load(path)        # missing file: empty
    assert len(history) == 0
    history.append(make_entry(generated="2026-08-01T00:00:00+0000"))
    history.append(make_entry(generated="2026-08-02T00:00:00+0000"))
    history.save(path)
    reloaded = BenchHistory.load(path)
    assert len(reloaded) == 2
    assert reloaded.to_payload() == history.to_payload()
    with open(path, encoding="utf-8") as handle:
        assert handle.read() == serialize(history.to_payload())


def test_append_caps_history_at_max(tmp_path):
    history = BenchHistory(path=str(tmp_path / "bench.json"))
    for index in range(MAX_HISTORY + 5):
        history.append(make_entry(
            generated="2026-08-01T00:00:%02d+0000" % (index % 60),
            note="n%d" % index))
    assert len(history) == MAX_HISTORY
    assert history[0].note == "n5"           # oldest five dropped
    assert [entry.index for entry in history] == list(range(MAX_HISTORY))


# -- migration views --------------------------------------------------------

def test_old_entries_become_single_sample_views():
    """v1/v2 point values surface as one-sample lists — downstream
    code never branches on version — without touching the raw dict."""
    raw = make_entry(version=2)
    before = json.dumps(raw, sort_keys=True)
    entry = BenchEntry(raw=raw, index=0)
    assert entry.optimized_samples() == [raw["campaign"]["optimized_seconds"]]
    assert entry.reference_samples() == [raw["campaign"]["reference_seconds"]]
    assert len(entry.throughput_samples()) == 1
    assert len(entry.speedup_samples()) == 1
    assert entry.phase_samples() == {}       # predates the phase clock
    assert json.dumps(raw, sort_keys=True) == before


def test_v2_point_phases_become_single_sample_matrix():
    raw = make_entry(version=2)
    raw["campaign"]["optimized_phase_seconds"] = {"decode": 0.2,
                                                  "simulate": 0.8}
    entry = BenchEntry(raw=raw, index=0)
    assert entry.phase_samples() == {"decode": [0.2], "simulate": [0.8]}


def test_fingerprint_derived_for_old_entries_matches_stored():
    """A v1 entry from the same host must fingerprint identically to a
    v3 entry that stores the field — that is what keeps absolute
    comparisons alive across the schema migration."""
    old = BenchEntry(raw=make_entry(version=1), index=0)
    new = BenchEntry(raw=make_entry(version=3), index=1)
    assert old.fingerprint == new.fingerprint
    assert old.fingerprint == host_fingerprint("linux-test", "3.11.0")
    assert len(old.fingerprint) == 12


def test_v3_samples_and_derived_metrics():
    entry = BenchEntry(raw=make_entry(optimized=[2.0, 2.5],
                                      reference=[8.0, 7.5],
                                      trials=64), index=0)
    assert entry.optimized_samples() == [2.0, 2.5]
    assert entry.throughput_samples() == [32.0, 25.6]
    assert entry.speedup_samples() == [4.0, 3.0]


# -- strict validation ------------------------------------------------------

def broken(mutate):
    entry = make_entry()
    mutate(entry)
    return entry


@pytest.mark.parametrize("payload,fragment", [
    ("not a dict", "not a JSON object"),
    (broken(lambda e: e.pop("version")), "non-integer 'version'"),
    (broken(lambda e: e.update(version=True)), "non-integer 'version'"),
    (broken(lambda e: e.update(version=SCHEMA_VERSION + 1)),
     "newer than this tool"),
    (broken(lambda e: e.pop("generated_at")),
     "non-string 'generated_at'"),
    (broken(lambda e: e["host"].pop("platform")),
     "non-string 'host.platform'"),
    (broken(lambda e: e.pop("engine")), "'engine.rows'"),
    (broken(lambda e: e["campaign"].pop("speedup")),
     "non-numeric 'campaign.speedup'"),
    (broken(lambda e: e["campaign"].update(speedup="4.1x")),
     "non-numeric 'campaign.speedup'"),
    (broken(lambda e: e["campaign"].update(trials=0)),
     "'campaign.trials' must be positive"),
    (broken(lambda e: e["campaign"].update(optimized_seconds=0)),
     "must be positive"),
    (broken(lambda e: e["campaign"]["optimized_sample_seconds"]
            .append(-0.5)), "non-negative"),
    (broken(lambda e: e["campaign"]["optimized_sample_seconds"]
            .append(True)), "non-negative"),
    (broken(lambda e: e["campaign"].update(
        optimized_sample_seconds=[])), "non-empty list"),
    (broken(lambda e: e["campaign"]
            ["optimized_phase_sample_seconds"].update(warmup=[0.1] * 3)),
     "unknown phase 'warmup'"),
    (broken(lambda e: e["campaign"]
            ["optimized_phase_sample_seconds"].update(decode=[0.1])),
     "disagree on repeat count"),
    (broken(lambda e: e["campaign"].pop("optimized_sample_seconds")),
     "lacks 'campaign.optimized_sample_seconds'"),
])
def test_validation_rejects_torn_or_hand_edited_entries(payload,
                                                        fragment):
    with pytest.raises(HistoryError, match=fragment):
        validate_entry(payload, label="entry 3")


def test_validation_error_names_the_entry():
    with pytest.raises(HistoryError, match="entry 3:"):
        validate_entry({"version": "x"}, label="entry 3")


def test_hand_edited_sample_list_caught_even_in_v2_entry():
    """The v3 fields are validated whenever present, so planting a
    corrupt sample list in an old-version entry is still an error."""
    entry = make_entry(version=2)
    entry["campaign"]["optimized_sample_seconds"] = [1.0, "fast"]
    with pytest.raises(HistoryError, match="non-negative"):
        validate_entry(entry)


def test_load_rejects_invalid_json(tmp_path):
    path = tmp_path / "bench.json"
    path.write_text('{"version": 3, "truncated', encoding="utf-8")
    with pytest.raises(HistoryError, match="not valid JSON"):
        BenchHistory.load(str(path))


def test_load_rejects_foreign_payloads(tmp_path):
    path = tmp_path / "bench.json"
    path.write_text("[1, 2, 3]\n", encoding="utf-8")
    with pytest.raises(HistoryError, match="not a JSON object"):
        BenchHistory.load(str(path))
    path.write_text(serialize({"version": 3}), encoding="utf-8")
    with pytest.raises(HistoryError, match="entry 0"):
        BenchHistory.load(str(path))


def test_empty_history_has_no_payload_and_no_refs(tmp_path):
    history = BenchHistory.load(str(tmp_path / "missing.json"))
    assert len(history) == 0
    with pytest.raises(HistoryError, match="empty history"):
        history.to_payload()
    with pytest.raises(HistoryError, match="history is empty"):
        history.resolve("latest")


# -- version references -----------------------------------------------------

def test_resolve_version_references():
    history = BenchHistory([make_entry(note="n%d" % index)
                            for index in range(4)])
    assert history.resolve("latest") == 3
    assert history.resolve("HEAD") == 3
    assert history.resolve("head~1") == 2
    assert history.resolve("HEAD~3") == 0
    assert history.resolve(1) == 1
    assert history.resolve("2") == 2
    assert history.resolve(-1) == 3
    assert history.resolve("-2") == 2
    assert history.entry("HEAD~2").note == "n1"


@pytest.mark.parametrize("ref,fragment", [
    ("HEAD~9", "no entry"),
    (7, "no entry"),
    (-5, "no entry"),
    ("HEAD~x", "non-negative integer"),
    ("v1.2", "bad version reference"),
])
def test_resolve_rejects_bad_references(ref, fragment):
    history = BenchHistory([make_entry() for _ in range(4)])
    with pytest.raises(HistoryError, match=fragment):
        history.resolve(ref)
