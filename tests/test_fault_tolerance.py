"""End-to-end fault-tolerance tests: detection, recovery, coverage.

These are the paper's core claims, exercised mechanically:

* with R >= 2, every injected transient fault is either masked (struck a
  dead value) or detected, and recovery restores architecturally correct
  execution — verified by lockstep comparison against the golden model;
* with R = 1 (protection off), the same faults silently corrupt state.
"""

import pytest

from repro.core.config import (DUAL_REDUNDANT, TRIPLE_MAJORITY,
                               TRIPLE_REWIND)
from repro.core.faults import FaultConfig
from repro.functional.checker import compare_states
from repro.functional.simulator import run_functional
from repro.uarch.config import MachineConfig
from repro.uarch.processor import simulate
from repro.workloads.microbench import (dot_product, fibonacci,
                                        vector_sum)

R3_CONFIG = MachineConfig(rob_size=126)


def _faults(rate, seed=17, kinds=None):
    kwargs = {"rate_per_million": rate, "seed": seed}
    if kinds is not None:
        kwargs["kind_weights"] = kinds
    return FaultConfig(**kwargs)


class TestDetectionAndRecovery:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_r2_recovers_exactly(self, seed):
        program = vector_sum(length=128)
        golden = run_functional(program)
        processor = simulate(program, ft=DUAL_REDUNDANT,
                             fault_config=_faults(3000, seed),
                             lockstep=True)
        assert processor.halted
        assert compare_states(processor.arch, golden.state).clean
        assert processor.stats.faults_detected >= 1

    @pytest.mark.parametrize("kind", ["value", "address", "branch"])
    def test_each_fault_kind_detected(self, kind):
        program = dot_product(length=64)
        golden = run_functional(program)
        processor = simulate(program, ft=DUAL_REDUNDANT,
                             fault_config=_faults(4000, seed=9,
                                                  kinds={kind: 1.0}),
                             lockstep=True)
        assert compare_states(processor.arch, golden.state).clean
        assert processor.stats.faults_injected >= 1
        assert processor.stats.rewinds >= 1

    def test_pc_fault_caught_by_continuity_check(self):
        program = fibonacci(n=400)
        golden = run_functional(program)
        processor = simulate(program, ft=DUAL_REDUNDANT,
                             fault_config=_faults(3000, seed=23,
                                                  kinds={"pc": 1.0}),
                             lockstep=True)
        assert compare_states(processor.arch, golden.state).clean
        assert processor.stats.pc_continuity_violations >= 1

    def test_recovery_penalty_is_tens_of_cycles(self):
        """The paper's Section 5.3: observed recovery cost ~30 cycles."""
        program = vector_sum(length=512)
        processor = simulate(program, ft=DUAL_REDUNDANT,
                             fault_config=_faults(2000, seed=4))
        assert processor.stats.rewinds >= 2
        assert 3 <= processor.stats.avg_recovery_penalty <= 120

    def test_throughput_barely_drops_at_low_rates(self):
        program = vector_sum(length=512)
        clean = simulate(program, ft=DUAL_REDUNDANT)
        faulty = simulate(program, ft=DUAL_REDUNDANT,
                          fault_config=_faults(100, seed=2))
        assert faulty.stats.ipc >= 0.95 * clean.stats.ipc


class TestUnprotectedCorruption:
    def test_r1_corrupts_silently(self):
        """The negative control: without redundancy faults slip through."""
        program = vector_sum(length=128)
        golden = run_functional(program)
        corrupted = 0
        for seed in range(6):
            processor = simulate(program,
                                 fault_config=_faults(4000, seed=seed))
            if not compare_states(processor.arch, golden.state).clean:
                corrupted += 1
        assert corrupted >= 3  # most seeds corrupt the final state

    def test_r1_counts_silent_commits(self):
        program = vector_sum(length=128)
        processor = simulate(program, fault_config=_faults(5000, seed=1))
        assert processor.stats.silent_commits >= 1
        assert processor.stats.faults_detected == 0


class TestTripleRedundancy:
    def test_majority_commits_through_single_faults(self):
        program = vector_sum(length=128)
        golden = run_functional(program)
        processor = simulate(program, config=R3_CONFIG,
                             ft=TRIPLE_MAJORITY,
                             fault_config=_faults(3000, seed=8),
                             lockstep=True)
        assert compare_states(processor.arch, golden.state).clean
        assert processor.stats.majority_commits >= 1
        # Majority election avoids most rewinds at this rate.
        assert processor.stats.rewinds <= processor.stats.majority_commits

    def test_rewind_only_r3_still_recovers(self):
        program = vector_sum(length=128)
        golden = run_functional(program)
        processor = simulate(program, config=R3_CONFIG, ft=TRIPLE_REWIND,
                             fault_config=_faults(3000, seed=8),
                             lockstep=True)
        assert compare_states(processor.arch, golden.state).clean
        assert processor.stats.majority_commits == 0
        assert processor.stats.rewinds >= 1

    def test_majority_faster_than_rewind_at_extreme_rates(self):
        program = vector_sum(length=256)
        rate = 200_000  # absurd: ~0.2 faults per instruction per copy
        majority = simulate(program, config=R3_CONFIG,
                            ft=TRIPLE_MAJORITY,
                            fault_config=_faults(rate, seed=3))
        rewind = simulate(program, config=R3_CONFIG, ft=TRIPLE_REWIND,
                          fault_config=_faults(rate, seed=3))
        assert majority.stats.ipc > rewind.stats.ipc


class TestDetectionAccounting:
    def test_detections_track_injections(self):
        program = vector_sum(length=256)
        processor = simulate(program, ft=DUAL_REDUNDANT,
                             fault_config=_faults(3000, seed=12))
        stats = processor.stats
        # Every detection stems from a fault; wrong-path faults may be
        # squashed before detection, so injected >= detected-ish bounds.
        assert stats.faults_detected >= 1
        assert stats.faults_detected <= stats.faults_injected + \
            stats.pc_continuity_violations
