"""Load-generator workloads, report reduction and fairness checks.

Mostly offline unit tests (arrival schedules, argument parsing,
``check_fairness`` on synthetic reports); one live two-tenant run
against a real ``repro-ft serve`` subprocess closes the loop — the
acceptance shape of the PR: mixed traffic, nobody starved, served
records byte-identical to in-process runs.
"""

import json

import pytest

from repro.errors import ConfigError
from repro.service.loadgen import (DEFAULT_SPEC, DynamicWorkload,
                                   LoadDriver, StaticWorkload,
                                   TraceReplayWorkload,
                                   format_load_report,
                                   parse_workload_arg)


class TestStaticWorkload:
    def test_burst_arrives_at_time_zero(self):
        arrivals = StaticWorkload(jobs=3).arrivals()
        assert [at for at, _ in arrivals] == [0.0, 0.0, 0.0]
        for _at, submission in arrivals:
            assert submission["spec"] == DEFAULT_SPEC
            assert "options" not in submission

    def test_optional_fields_forwarded(self):
        workload = StaticWorkload(jobs=1, spec={"name": "mine"},
                                  options={"workers": 2},
                                  priority=4, shards=2)
        _at, submission = workload.arrivals()[0]
        assert submission == {"spec": {"name": "mine"},
                              "options": {"workers": 2},
                              "priority": 4, "shards": 2}

    def test_validation(self):
        with pytest.raises(ConfigError):
            StaticWorkload(jobs=0)


class TestDynamicWorkload:
    def test_seeded_schedule_is_deterministic(self):
        first = DynamicWorkload(jobs=5, rate=2.0, seed=7).arrivals()
        again = DynamicWorkload(jobs=5, rate=2.0, seed=7).arrivals()
        assert first == again
        other = DynamicWorkload(jobs=5, rate=2.0, seed=8).arrivals()
        assert [at for at, _ in first] != [at for at, _ in other]

    def test_arrival_times_increase_at_roughly_the_rate(self):
        arrivals = DynamicWorkload(jobs=200, rate=4.0).arrivals()
        times = [at for at, _ in arrivals]
        assert times == sorted(times)
        assert all(at > 0 for at in times)
        # Mean interarrival of Exp(4.0) is 0.25s; with 200 samples the
        # empirical mean lands well within a factor of two.
        assert 0.125 < times[-1] / len(times) < 0.5

    def test_validation(self):
        with pytest.raises(ConfigError):
            DynamicWorkload(jobs=0, rate=1.0)
        with pytest.raises(ConfigError):
            DynamicWorkload(jobs=1, rate=0.0)


class TestTraceReplayWorkload:
    def write_trace(self, tmp_path, lines):
        path = tmp_path / "trace.jsonl"
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    def test_replay_sorts_and_fills_defaults(self, tmp_path):
        path = self.write_trace(tmp_path, [
            '{"at": 2.0, "priority": 3}',
            "# a comment, skipped",
            '{"at": 0.5, "spec": {"name": "custom"}, "shards": 2}',
            "",
            '{"at": 1.0, "options": {"workers": 1}}',
        ])
        arrivals = TraceReplayWorkload(path).arrivals()
        assert [at for at, _ in arrivals] == [0.5, 1.0, 2.0]
        assert arrivals[0][1]["spec"] == {"name": "custom"}
        assert arrivals[0][1]["shards"] == 2
        assert arrivals[1][1]["options"] == {"workers": 1}
        assert arrivals[2][1]["spec"] == DEFAULT_SPEC
        assert arrivals[2][1]["priority"] == 3

    def test_time_scale_stretches_the_clock(self, tmp_path):
        path = self.write_trace(tmp_path, ['{"at": 2.0}'])
        assert TraceReplayWorkload(path, time_scale=0.5) \
            .arrivals()[0][0] == 1.0

    def test_malformed_line_names_the_line(self, tmp_path):
        path = self.write_trace(tmp_path, ['{"at": 0}', "{broken"])
        with pytest.raises(ConfigError, match="line 2"):
            TraceReplayWorkload(path).arrivals()

    def test_missing_or_empty_traces_raise(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot read"):
            TraceReplayWorkload(str(tmp_path / "nope")).arrivals()
        empty = self.write_trace(tmp_path, ["# nothing"])
        with pytest.raises(ConfigError, match="no arrivals"):
            TraceReplayWorkload(empty).arrivals()
        with pytest.raises(ConfigError):
            TraceReplayWorkload("x", time_scale=0.0)


class TestParseWorkloadArg:
    def test_static(self):
        tenant, workload = parse_workload_arg("alice:static:3")
        assert tenant == "alice"
        assert isinstance(workload, StaticWorkload)
        assert workload.jobs == 3

    def test_dynamic(self):
        tenant, workload = parse_workload_arg("bob:dynamic:4:2.5")
        assert tenant == "bob"
        assert isinstance(workload, DynamicWorkload)
        assert (workload.jobs, workload.rate) == (4, 2.5)

    def test_trace_with_scale(self):
        tenant, workload = parse_workload_arg(
            "carol:trace:/tmp/t.jsonl:0.5")
        assert tenant == "carol"
        assert isinstance(workload, TraceReplayWorkload)
        assert workload.time_scale == 0.5

    @pytest.mark.parametrize("text", [
        "", "alice", ":static:2", "alice:static", "alice:static:x",
        "alice:dynamic:3", "alice:dynamic:3:fast", "alice:burst:2",
    ])
    def test_malformed(self, text):
        with pytest.raises(ConfigError):
            parse_workload_arg(text)


class TestCheckFairness:
    def report(self, slots=2, **tenants):
        return {"fairness": {
            "slots": slots,
            "tenants": {name: dict(entry)
                        for name, entry in tenants.items()}}}

    def entry(self, busy, demand, weight=1.0, trials=10):
        return {"busy_seconds": busy, "demand_seconds": demand,
                "weight": weight, "trials_executed": trials}

    def test_fair_run_is_clean(self):
        report = self.report(alice=self.entry(9.0, 10.0),
                             bob=self.entry(9.5, 10.0))
        assert LoadDriver.check_fairness(report) == []

    def test_starved_tenant_is_flagged(self):
        report = self.report(alice=self.entry(19.0, 10.0),
                             bob=self.entry(0.5, 10.0))
        violations = LoadDriver.check_fairness(report)
        assert len(violations) == 1
        assert "'bob'" in violations[0]
        assert "max-min share" in violations[0]

    def test_share_is_weighted(self):
        # 3:1 weights over 4 slots: alice's share is 3, bob's is 1.
        # bob holding a full slot is fair; alice holding one is not.
        report = self.report(
            slots=4,
            alice=self.entry(10.0, 10.0, weight=3.0),
            bob=self.entry(10.0, 10.0, weight=1.0))
        violations = LoadDriver.check_fairness(report, tolerance=0.2)
        assert len(violations) == 1 and "'alice'" in violations[0]

    def test_brief_demand_is_ignored(self):
        report = self.report(alice=self.entry(19.0, 10.0),
                             bob=self.entry(0.0, 0.05))
        assert LoadDriver.check_fairness(report) == []

    def test_zero_trials_is_flagged(self):
        report = self.report(alice=self.entry(9.0, 10.0, trials=0))
        violations = LoadDriver.check_fairness(
            report, tolerance=0.99)
        assert violations == ["tenant 'alice' executed no trials"]


class TestFormatReport:
    def test_report_renders_human_readably(self):
        report = {
            "wall_seconds": 4.2,
            "errors": ["tenant bob: boom"],
            "tenants": {"alice": {
                "jobs_submitted": 2, "jobs_done": 2,
                "jobs_failed": 0, "trials_executed": 8,
                "submit_latency_mean": 0.01,
                "submit_latency_max": 0.02,
                "active_seconds": 3.0, "trials_per_second": 2.67,
                "sse_events_first_job": 11,
                "sse_kinds": ["job_queued", "trial_finished"]}},
            "fairness": {"slots": 2, "tenants": {
                "alice": {"busy_seconds": 2.0, "demand_seconds": 2.5,
                          "weight": 1.0, "in_flight": 0,
                          "trials_executed": 8}}},
        }
        text = format_load_report(report)
        assert "alice" in text
        assert "boom" in text
        assert json.loads(json.dumps(report)) == report  # JSON-safe


class TestLiveLoad:
    def test_two_tenant_mixed_traffic_end_to_end(self, tmp_path):
        from test_service_server import ServeProcess
        serve = ServeProcess(tmp_path / "svc")
        try:
            driver = LoadDriver(
                serve.client,
                {"alice": StaticWorkload(jobs=2),
                 "bob": DynamicWorkload(jobs=2, rate=4.0)})
            report = driver.run()
            for tenant in ("alice", "bob"):
                entry = report["tenants"][tenant]
                assert entry["jobs_done"] == 2
                assert entry["jobs_failed"] == 0
                assert entry["trials_executed"] == 8
                assert entry["sse_events_first_job"] > 0
                assert "trial_finished" in entry["sse_kinds"]
            assert report["errors"] == []
            assert LoadDriver.check_fairness(report) == []
            assert driver.verify_results() == []
        finally:
            serve.terminate()
