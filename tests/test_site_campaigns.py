"""Fault-site campaigns: the ``fault_sites`` axis end to end."""

import json

import pytest

from repro.campaign import (CampaignSession, CampaignSpec,
                            ExecutionOptions, aggregate_structures,
                            structures_to_json)
from repro.errors import ConfigError
from repro.harness.experiment import site_sensitivity_spec


def sweep_spec(**overrides):
    kwargs = dict(
        name="site-grid",
        workloads=("gcc",),
        models=("SS-1", "SS-2"),
        rates_per_million=(0.0,),
        replicates=4,
        instructions=400,
        fault_sites={
            "sweep-rob": {"policy": "structure_sweep",
                          "structure": "rob_entry", "strikes": 1},
            "sweep-pc": {"policy": "structure_sweep",
                         "structure": "pc", "strikes": 1}})
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


class TestSpecAxis:
    def test_grid_size_multiplies(self):
        spec = sweep_spec()
        assert spec.grid_size == 1 * 2 * 1 * 1 * 2 * 4
        assert sum(1 for _ in spec.trials()) == spec.grid_size

    def test_nonzero_rates_are_refused(self):
        with pytest.raises(ConfigError):
            sweep_spec(rates_per_million=(0.0, 1000.0))

    def test_bad_cells_are_refused(self):
        with pytest.raises(ConfigError):
            sweep_spec(fault_sites={"x": {"policy": "nosuch"}})
        with pytest.raises(ConfigError):
            sweep_spec(fault_sites={"": {"policy": "structure_sweep",
                                         "structure": "pc"}})
        with pytest.raises(ConfigError):
            sweep_spec(fault_sites=[{"policy": "structure_sweep"}])

    def test_trials_carry_the_cell(self):
        spec = sweep_spec()
        names = {trial.sites for trial in spec.trials()}
        assert names == {"sweep-rob", "sweep-pc"}
        trial = next(iter(spec.trials()))
        config = json.loads(trial.site_config)
        assert config["policy"] == "structure_sweep"
        policy = trial.injection_policy()
        assert policy.seed == trial.fault_seed
        assert policy.horizon == trial.instructions + trial.warmup

    def test_replicates_sweep_different_sites(self):
        """Each replicate's sweep is seeded from its own trial key, so
        the cell samples distinct sites — that is the Monte Carlo."""
        spec = sweep_spec(models=("SS-2",))
        policies = [trial.injection_policy() for trial in spec.trials()
                    if trial.sites == "sweep-rob"]
        for policy in policies:
            policy.bind(2)
        site_sets = {tuple(policy.sites) for policy in policies}
        assert len(site_sets) == len(policies)

    def test_rate_only_trials_have_no_site_fields(self):
        spec = CampaignSpec(workloads=("gcc",), models=("SS-2",),
                            rates_per_million=(0.0, 1000.0),
                            replicates=1, instructions=300)
        for trial in spec.trials():
            data = trial.to_dict()
            assert "sites" not in data
            assert "site_config" not in data
            assert trial.injection_policy() is None

    def test_spec_round_trips_through_json(self):
        spec = sweep_spec()
        clone = CampaignSpec.from_dict(
            json.loads(json.dumps(spec.to_dict())))
        assert [t.key for t in clone.trials()] \
            == [t.key for t in spec.trials()]

    def test_shard_partitions_site_trials(self):
        spec = sweep_spec()
        keys = {trial.key for trial in spec.trials()}
        sharded = {trial.key for index in (0, 1)
                   for trial in spec.shard(index, 2).trials()}
        assert sharded == keys


class TestSiteCampaignExecution:
    @pytest.fixture(scope="class")
    def run(self):
        spec = sweep_spec()
        session = CampaignSession(spec)
        result = session.run()
        return spec, session, result

    def test_records_carry_strikes(self, run):
        spec, session, result = run
        assert len(result.records) == spec.grid_size
        struck = [record for record in result.records
                  if record.get("site_strikes")]
        assert struck, "no sweep strike ever landed"
        for record in struck:
            config = record["trial"]["site_config"]
            assert set(record["site_strikes"]) \
                == {config["structure"]}

    def test_cells_split_by_sites(self, run):
        spec, session, result = run
        cells = session.aggregate()
        assert sorted({cell.sites for cell in cells}) \
            == ["sweep-pc", "sweep-rob"]
        payload = json.loads(
            __import__("repro.campaign", fromlist=["cells_to_json"])
            .cells_to_json(cells))
        assert all(cell["sites"] in ("sweep-pc", "sweep-rob")
                   for cell in payload)

    def test_structure_rows(self, run):
        spec, session, result = run
        rows = session.aggregate_structures()
        assert [row.structure for row in rows] == ["pc", "rob_entry"]
        for row in rows:
            assert row.n == 8               # 2 models x 4 replicates
            assert 0 <= row.struck_trials <= row.n
            if row.struck_trials:
                low, high = row.coverage_interval
                assert 0.0 <= low <= row.coverage <= high <= 1.0
        payload = json.loads(structures_to_json(rows))
        assert [row["structure"] for row in payload] \
            == ["pc", "rob_entry"]

    def test_workers_and_resume_agree_with_serial(self, run, tmp_path):
        spec, _, result = run
        serial = json.dumps(result.records, sort_keys=True)
        pooled = CampaignSession(
            spec, options=ExecutionOptions(workers=2)).run()
        assert json.dumps(pooled.records, sort_keys=True) == serial
        store = __import__("repro.campaign",
                           fromlist=["open_store"]).open_store(
            "sqlite:%s" % (tmp_path / "sites.db"))
        for record in result.records[:5]:
            store.append(record)
        resumed = CampaignSession(spec, store=store).resume()
        assert resumed.skipped == 5
        assert json.dumps(resumed.records, sort_keys=True) == serial


class TestSiteSensitivitySpec:
    def test_defaults_cover_every_structure(self):
        from repro.faults import STRUCTURES
        spec = site_sensitivity_spec()
        assert set(spec.fault_sites) \
            == {"sweep-%s" % s for s in STRUCTURES}
        assert spec.rates_per_million == (0.0,)

    def test_runs_end_to_end(self):
        spec = site_sensitivity_spec(structures=("fu_result",),
                                     replicates=3, instructions=300)
        session = CampaignSession(spec)
        result = session.run()
        assert len(result.records) == 3
        rows = session.aggregate_structures()
        assert [row.structure for row in rows] == ["fu_result"]


class TestSiteListCampaign:
    def test_directed_site_list_cell(self):
        spec = CampaignSpec(
            name="directed", workloads=("gcc",), models=("SS-2",),
            rates_per_million=(0.0,), replicates=2, instructions=400,
            fault_sites={
                "strike-40": {
                    "policy": "site_list",
                    "sites": [{"structure": "fu_result", "index": 40,
                               "copy": 1, "bit": 7},
                              {"structure": "pc", "index": 90,
                               "bit": 3}]}})
        session = CampaignSession(spec)
        result = session.run()
        # Directed strikes are deterministic: both replicates hit both
        # structures identically.
        for record in result.records:
            assert record["site_strikes"] == {"fu_result": 1, "pc": 1}
            assert record["faults_detected"] >= 2
        rows = aggregate_structures(result.records)
        assert [row.structure for row in rows] == ["fu_result", "pc"]
        for row in rows:
            assert row.n == 2 and row.struck_trials == 2


class TestSiteCli:
    def test_campaign_sites_flag(self, capsys):
        from repro.harness.cli import main
        assert main(["campaign", "--sites", "rob_entry", "--workloads",
                     "gcc", "--models", "SS-2", "--replicates", "2",
                     "--instructions", "300", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "Per-structure fault sensitivity" in out
        assert "rob_entry" in out

    def test_campaign_sites_json_payload(self, capsys):
        from repro.harness.cli import main
        assert main(["campaign", "--sites", "pc", "--workloads", "gcc",
                     "--models", "SS-2", "--replicates", "2",
                     "--instructions", "300", "--quiet",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"cells", "structures"}
        assert payload["structures"][0]["structure"] == "pc"

    def test_campaign_sites_rejects_unknown_structure(self):
        from repro.harness.cli import main
        with pytest.raises(SystemExit):
            main(["campaign", "--sites", "warp_core", "--quiet"])

    def test_campaign_sites_with_explicit_rates_refused(self):
        from repro.harness.cli import main
        with pytest.raises(SystemExit):
            main(["campaign", "--sites", "pc", "--rates", "0,1000",
                  "--quiet"])
        # An explicitly typed default is just as contradictory.
        with pytest.raises(SystemExit):
            main(["campaign", "--sites", "pc", "--rates",
                  "0,1000,10000", "--quiet"])

    def test_cli_and_api_sweeps_share_trial_keys(self):
        """--sites and site_sensitivity_spec build identical cells, so
        their campaigns can share stores."""
        from repro.harness.cli import _parse_sites
        spec = site_sensitivity_spec(replicates=2, instructions=300,
                                     structures=("pc", "rob_entry"))
        assert _parse_sites("pc,rob_entry", 1) == dict(spec.fault_sites)


class TestSessionValidation:
    def test_reference_simulator_with_sites_refused_upfront(self):
        with pytest.raises(ConfigError):
            CampaignSession(
                sweep_spec(),
                options=ExecutionOptions(simulator="reference"))

    def test_reference_simulator_still_fine_without_sites(self):
        spec = CampaignSpec(workloads=("gcc",), models=("SS-2",),
                            rates_per_million=(0.0,), replicates=1,
                            instructions=200)
        CampaignSession(spec,
                        options=ExecutionOptions(simulator="reference"))
