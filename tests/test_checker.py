"""Golden-state checker tests."""

import pytest

from repro.functional.checker import (assert_states_equal, compare_states)
from repro.functional.state import ArchState
from repro.memory.main_memory import MainMemory


def _pair(mem_size=64):
    return (ArchState(memory=MainMemory(mem_size)),
            ArchState(memory=MainMemory(mem_size)))


class TestCompareStates:
    def test_fresh_states_equal(self):
        left, right = _pair()
        assert compare_states(left, right).clean

    def test_register_difference_detected(self):
        left, right = _pair()
        left.write_reg(5, 42)
        diff = compare_states(left, right)
        assert not diff.clean
        assert diff.reg_mismatches[0][0] == 5

    def test_memory_difference_detected(self):
        left, right = _pair()
        left.memory.store(10, 99)
        diff = compare_states(left, right)
        assert diff.mem_mismatches == [(10, 99, 0)]

    def test_pc_checked_only_on_request(self):
        left, right = _pair()
        left.pc = 5
        assert compare_states(left, right).clean
        assert compare_states(left, right,
                              check_pc=True).pc_mismatch == (5, 0)

    def test_different_sizes_rejected(self):
        left = ArchState(memory=MainMemory(32))
        right = ArchState(memory=MainMemory(64))
        with pytest.raises(ValueError):
            compare_states(left, right)

    def test_float_vs_int_cell_mismatch(self):
        left, right = _pair()
        left.memory.store(0, 1)
        right.memory.store(0, 1.0)
        assert not compare_states(left, right).clean


class TestAssertHelper:
    def test_passes_on_equal(self):
        left, right = _pair()
        assert_states_equal(left, right)

    def test_raises_with_context(self):
        left, right = _pair()
        left.write_reg(3, 1)
        with pytest.raises(AssertionError) as excinfo:
            assert_states_equal(left, right, context="after run")
        assert "after run" in str(excinfo.value)
        assert "r3" in str(excinfo.value)

    def test_summary_caps_output(self):
        left, right = _pair()
        for index in range(1, 20):
            left.write_reg(index, index)
        diff = compare_states(left, right)
        assert "more" in diff.summary(limit=4)
