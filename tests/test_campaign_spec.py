"""Campaign spec expansion: grids, keys, seeds, serialisation."""

import json

import pytest

from repro.campaign.spec import CampaignSpec, Trial
from repro.core.faults import KIND_MIX_PRESETS
from repro.errors import ConfigError


def small_spec(**overrides):
    kwargs = dict(workloads=("gcc", "go"), models=("SS-1", "SS-2"),
                  rates_per_million=(0.0, 1000.0), replicates=2,
                  instructions=500)
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


class TestExpansion:
    def test_grid_size_matches_trials(self):
        spec = small_spec()
        trials = list(spec.trials())
        assert spec.grid_size == 2 * 2 * 2 * 1 * 2
        assert len(trials) == spec.grid_size

    def test_keys_unique(self):
        trials = list(small_spec().trials())
        assert len({t.key for t in trials}) == len(trials)

    def test_expansion_is_deterministic(self):
        spec = small_spec()
        first = [(t.key, t.fault_seed) for t in spec.trials()]
        second = [(t.key, t.fault_seed) for t in spec.trials()]
        assert first == second

    def test_replicates_get_distinct_seeds(self):
        spec = small_spec(workloads=("gcc",), models=("SS-2",),
                          rates_per_million=(1000.0,), replicates=8)
        seeds = [t.fault_seed for t in spec.trials()]
        assert len(set(seeds)) == len(seeds)

    def test_int_and_float_specs_hash_identically(self):
        # A JSON spec file naturally carries ints where CLI flags
        # produce floats; both must expand to the same trial keys or
        # --resume silently matches nothing.
        as_int = CampaignSpec.from_dict(
            {"workloads": ["gcc"], "rates_per_million": [0, 3000],
             "mixes": {"m": {"value": 1}}})
        as_float = CampaignSpec.from_dict(
            {"workloads": ["gcc"], "rates_per_million": [0.0, 3000.0],
             "mixes": {"m": {"value": 1.0}}})
        assert [t.key for t in as_int.trials()] \
            == [t.key for t in as_float.trials()]

    def test_max_cycles_changes_keys(self):
        # max_cycles changes timeout classification, so records from a
        # different cycle budget must not satisfy --resume.
        default = {t.key for t in small_spec().trials()}
        bounded = {t.key for t in small_spec(max_cycles=10_000).trials()}
        assert default.isdisjoint(bounded)

    def test_base_seed_changes_keys(self):
        keys_a = {t.key for t in small_spec(base_seed=1).trials()}
        keys_b = {t.key for t in small_spec(base_seed=2).trials()}
        assert keys_a.isdisjoint(keys_b)

    def test_seed_is_function_of_trial_not_order(self):
        spec = small_spec()
        by_key = {t.key: t.fault_seed for t in spec.trials()}
        # A narrower spec covering a subset of the same grid points
        # must derive identical seeds for the shared trials.
        narrow = small_spec(workloads=("go",), models=("SS-2",))
        for trial in narrow.trials():
            assert by_key[trial.key] == trial.fault_seed


class TestSharding:
    def test_shards_partition_the_keyspace(self):
        spec = small_spec()
        full = [t.key for t in spec.trials()]
        for total in (1, 2, 3):
            shards = [spec.shard(index, total) for index in range(total)]
            keys = [set(t.key for t in shard.trials())
                    for shard in shards]
            # Disjoint and exhaustive: every trial lands in exactly
            # one shard, and shard order preserves expansion order.
            union = set()
            for shard_keys in keys:
                assert union.isdisjoint(shard_keys)
                union.update(shard_keys)
            assert union == set(full)
            assert sum(shard.grid_size for shard in shards) == len(full)

    def test_shard_of_one_is_the_full_grid(self):
        spec = small_spec()
        assert [t.key for t in spec.shard(0, 1).trials()] \
            == [t.key for t in spec.trials()]

    def test_shard_membership_is_deterministic(self):
        spec = small_spec()
        first = [t.key for t in spec.shard(1, 3).trials()]
        second = [t.key for t in spec.shard(1, 3).trials()]
        assert first == second

    def test_shard_delegates_spec_attributes(self):
        spec = small_spec()
        shard = spec.shard(0, 2)
        assert shard.workloads == spec.workloads
        assert shard.replicates == spec.replicates
        assert "shard 0/2" in shard.name

    def test_shard_bounds_validated(self):
        # A bad index must fail loudly, never expand to a silently
        # empty grid.
        spec = small_spec()
        with pytest.raises(ConfigError):
            spec.shard(2, 2)
        with pytest.raises(ConfigError):
            spec.shard(-1, 2)
        with pytest.raises(ConfigError):
            spec.shard(0, 0)
        with pytest.raises(ConfigError):
            spec.shard(0.0, 2)
        with pytest.raises(ConfigError):
            spec.shard(0, "4")
        with pytest.raises(ConfigError):
            spec.shard(True, 2)


class TestMachineOverrides:
    def axis_spec(self, **overrides):
        kwargs = dict(machine_overrides={"base": {},
                                         "rob64": {"rob_size": 64},
                                         "alu8": {"int_alu": 8}})
        kwargs.update(overrides)
        return small_spec(**kwargs)

    def test_axis_multiplies_grid(self):
        spec = self.axis_spec()
        assert spec.grid_size == small_spec().grid_size * 3
        trials = list(spec.trials())
        assert len(trials) == spec.grid_size
        assert len({t.key for t in trials}) == len(trials)
        assert {t.machine for t in trials} == {"base", "rob64", "alu8"}

    def test_absent_axis_keeps_trials_bare(self):
        # No machine_overrides: trial keys, dicts and spec dicts stay
        # byte-identical to the pre-axis schema.
        trial = next(small_spec().trials())
        assert trial.machine == ""
        assert trial.machine_overrides == ()
        assert "machine" not in trial.to_dict()
        assert "machine_overrides" not in small_spec().to_dict()

    def test_axis_changes_keys(self):
        bare = {t.key for t in small_spec().trials()}
        with_axis = {t.key for t in
                     small_spec(machine_overrides={"base": {}}).trials()}
        assert bare.isdisjoint(with_axis)

    def test_spec_round_trip_with_axis(self):
        spec = self.axis_spec()
        clone = CampaignSpec.from_dict(spec.to_dict())
        assert [t.key for t in clone.trials()] \
            == [t.key for t in spec.trials()]

    def test_trial_round_trip_with_axis(self):
        trial = next(self.axis_spec().trials())
        clone = Trial.from_dict(trial.to_dict())
        assert clone == trial

    def test_integral_float_override_values_hash_identically(self):
        # A JSON spec file spelling rob_size as 64.0 must expand to the
        # same trial keys (and the same applied config) as the CLI's
        # int 64 — otherwise --resume across the two spellings silently
        # matches nothing.
        as_int = small_spec(machine_overrides={"r": {"rob_size": 64}})
        as_float = small_spec(
            machine_overrides={"r": {"rob_size": 64.0}})
        assert [t.key for t in as_int.trials()] \
            == [t.key for t in as_float.trials()]
        trial = next(as_float.trials())
        assert trial.machine_overrides == (("rob_size", 64),)
        assert trial.resolve_model().config.rob_size == 64

    def test_resolve_model_applies_overrides(self):
        spec = small_spec(models=("SS-2",),
                          machine_overrides={"rob64": {"rob_size": 64}})
        trial = next(spec.trials())
        assert trial.resolve_model().config.rob_size == 64

    def test_unknown_override_field_rejected(self):
        with pytest.raises(ConfigError):
            small_spec(machine_overrides={"bad": {"rob_szie": 64}})

    def test_invalid_override_value_rejected(self):
        with pytest.raises(ConfigError):
            small_spec(machine_overrides={"bad": {"rob_size": 0}})

    def test_non_scalar_override_rejected(self):
        with pytest.raises(ConfigError):
            small_spec(machine_overrides={"bad": {"rob_size": [64]}})

    def test_bad_axis_shapes_rejected(self):
        with pytest.raises(ConfigError):
            small_spec(machine_overrides={"": {}})
        with pytest.raises(ConfigError):
            small_spec(machine_overrides={"bad": "rob_size=64"})
        with pytest.raises(ConfigError):
            small_spec(machine_overrides=["rob64"])


class TestValidation:
    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            small_spec(workloads=("nosuch",))

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            small_spec(models=("SS-9",))

    def test_bad_replicates_rejected(self):
        with pytest.raises(ConfigError):
            small_spec(replicates=0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigError):
            small_spec(rates_per_million=(-1.0,))

    def test_bad_mix_rejected(self):
        with pytest.raises(ConfigError):
            small_spec(mixes={"broken": {"value": 0.0}})

    def test_non_numeric_spec_fields_rejected(self):
        # Spec files are arbitrary JSON: bad types must die as clean
        # ConfigErrors at construction, not TypeErrors mid-expansion.
        with pytest.raises(ConfigError):
            small_spec(rates_per_million=("0", "1000"))
        with pytest.raises(ConfigError):
            small_spec(replicates=2.5)
        with pytest.raises(ConfigError):
            small_spec(instructions="many")
        with pytest.raises(ConfigError):
            small_spec(max_cycles="lots")
        with pytest.raises(ConfigError):
            small_spec(mixes={"m": {"value": "heavy"}})

    def test_duplicate_axis_values_rejected(self):
        # Duplicates would double-count trials and fake tighter CIs.
        with pytest.raises(ConfigError):
            small_spec(rates_per_million=(0.0, 1000.0, 1000.0))
        with pytest.raises(ConfigError):
            small_spec(workloads=("gcc", "gcc"))
        with pytest.raises(ConfigError):
            # int/float aliases of the same rate are still duplicates.
            small_spec(rates_per_million=(0, 0.0))


class TestSerialisation:
    def test_spec_round_trip(self):
        spec = small_spec()
        clone = CampaignSpec.from_dict(spec.to_dict())
        assert [t.key for t in clone.trials()] \
            == [t.key for t in spec.trials()]

    def test_mixes_as_preset_names(self):
        spec = CampaignSpec.from_dict(
            {"workloads": ["gcc"], "mixes": ["default", "value-only"]})
        assert spec.mixes["value-only"] \
            == KIND_MIX_PRESETS["value-only"]
        assert len(list(spec.trials())) == spec.grid_size

    def test_mixes_as_single_string(self):
        # The natural spec-file mistake "mixes": "default" resolves to
        # the one preset instead of an AttributeError traceback.
        spec = CampaignSpec.from_dict(
            {"workloads": ["gcc"], "mixes": "value-only"})
        assert list(spec.mixes) == ["value-only"]

    def test_mixes_bad_type_rejected(self):
        with pytest.raises(ConfigError):
            CampaignSpec.from_dict({"mixes": 42})
        with pytest.raises(ConfigError):
            small_spec(mixes={"m": "not-a-dict"})

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigError):
            CampaignSpec.from_dict({"bogus": 1})

    def test_from_json_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(
            {"name": "filetest", "workloads": ["gcc"],
             "models": ["SS-2"], "rates_per_million": [0.0],
             "replicates": 3, "instructions": 400}))
        spec = CampaignSpec.from_json_file(str(path))
        assert spec.name == "filetest"
        assert spec.grid_size == 3

    def test_trial_round_trip(self):
        trial = next(iter(small_spec().trials()))
        clone = Trial.from_dict(trial.to_dict())
        assert clone == trial

    def test_trial_fault_config(self):
        spec = small_spec(workloads=("gcc",), models=("SS-2",),
                          rates_per_million=(0.0, 500.0), replicates=1)
        clean, faulty = spec.trials()
        assert clean.fault_config() is None
        config = faulty.fault_config()
        assert config.rate_per_million == 500.0
        assert config.seed == faulty.fault_seed
