"""Functional-unit pool tests: pipelining vs blocking semantics."""

from repro.isa.opcodes import FuClass
from repro.uarch.config import MachineConfig
from repro.uarch.funits import FuBank, FuPool


class TestPipelinedIssue:
    def test_one_issue_per_unit_per_cycle(self):
        pool = FuPool(FuClass.INT_ALU, 2)
        assert pool.try_issue(1, latency=1, unpipelined=False) is not None
        assert pool.try_issue(1, latency=1, unpipelined=False) is not None
        assert pool.try_issue(1, latency=1, unpipelined=False) is None

    def test_next_cycle_frees_issue_port(self):
        pool = FuPool(FuClass.INT_ALU, 1)
        assert pool.try_issue(1, 1, False) is not None
        assert pool.try_issue(2, 1, False) is not None

    def test_long_latency_pipelined_still_issues_every_cycle(self):
        pool = FuPool(FuClass.FP_MULT, 1)
        for cycle in range(1, 5):
            assert pool.try_issue(cycle, latency=4,
                                  unpipelined=False) is not None


class TestUnpipelinedIssue:
    def test_blocks_unit_for_full_latency(self):
        pool = FuPool(FuClass.INT_MULT, 1)
        assert pool.try_issue(1, latency=20, unpipelined=True) is not None
        assert pool.try_issue(2, 20, True) is None
        assert pool.try_issue(20, 20, True) is None
        assert pool.try_issue(21, 20, True) is not None

    def test_second_unit_takes_overflow(self):
        pool = FuPool(FuClass.INT_MULT, 2)
        assert pool.try_issue(1, 20, True) == 0
        assert pool.try_issue(1, 20, True) == 1
        assert pool.try_issue(1, 20, True) is None

    def test_mixed_pipelined_and_unpipelined(self):
        # A divide blocks one unit; a multiply can still use the other.
        pool = FuPool(FuClass.INT_MULT, 2)
        assert pool.try_issue(1, 20, True) == 0    # div
        assert pool.try_issue(1, 3, False) == 1    # mul on unit 2
        assert pool.try_issue(1, 3, False) is None
        assert pool.try_issue(2, 3, False) == 1    # unit 2 pipelined

    def test_avoid_steers_to_other_unit(self):
        pool = FuPool(FuClass.INT_ALU, 2)
        assert pool.try_issue(1, 1, False, avoid=0) == 1
        # avoid falls back to the avoided unit when it is the only one.
        assert pool.try_issue(1, 1, False, avoid=0) == 0
        assert pool.try_issue(1, 1, False, avoid=0) is None

    def test_avoid_none_takes_first_free(self):
        pool = FuPool(FuClass.INT_ALU, 2)
        assert pool.try_issue(1, 1, False) == 0


class TestAccounting:
    def test_busy_cycles(self):
        pool = FuPool(FuClass.INT_MULT, 1)
        pool.try_issue(1, 20, True)
        assert pool.busy_cycles == 20
        pool.reset()
        assert pool.busy_cycles == 0

    def test_available(self):
        pool = FuPool(FuClass.INT_ALU, 3)
        pool.try_issue(1, 1, False)
        assert pool.available(1) == 2
        assert pool.available(2) == 3


class TestBank:
    def test_bank_reflects_config(self):
        bank = FuBank(MachineConfig())
        assert bank.pools[FuClass.INT_ALU].count == 4
        assert bank.pools[FuClass.FP_MULT].count == 1

    def test_zero_unit_class_never_issues(self):
        bank = FuBank(MachineConfig(fp_mult=0))
        assert bank.try_issue(FuClass.FP_MULT, 1, 4, False) is None

    def test_utilisation(self):
        bank = FuBank(MachineConfig())
        bank.try_issue(FuClass.INT_ALU, 1, 1, False)
        util = bank.utilisation(cycles=10)
        assert 0 < util["INT_ALU"] <= 1
