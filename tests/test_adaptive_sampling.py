"""Adaptive sampling: plan validation, scheduler behaviour, golden
equivalence with the fixed plan, and the fewer-trials payoff.

The central contract under test: an adaptive plan only ever *selects*
which pre-keyed replicates run.  With an unreachable half-width target
every cell runs to completion and the records/aggregates must be
byte-identical to the fixed plan on the saved 64-trial acceptance grid
(``tests/data/golden_spec64.json``) — serially and through a
``workers=2`` pool — while a reachable target on a high-contrast grid
must land every cell at the same target with measurably fewer trials.
"""

import json
import os

import pytest

from repro.campaign import (CELL_CONVERGED, CELL_FINISHED,
                            CampaignSession, CampaignSpec,
                            ExecutionOptions, SamplingPlan,
                            cells_to_json, open_store,
                            wilson_halfwidth)
from repro.campaign.adaptive import (CAPPED, CONVERGED, EXHAUSTED,
                                     AdaptiveScheduler)
from repro.errors import ConfigError
from repro.harness.experiment import adaptive_demo_spec

FIXTURE = os.path.join(os.path.dirname(__file__), "data",
                       "golden_spec64.json")

#: A target no binomial sample of this size can reach — the plan that
#: must degenerate to the fixed plan exactly.
UNREACHABLE = SamplingPlan.wilson(1e-9, metric="sdc_rate",
                                  min_replicates=1)


@pytest.fixture(scope="module")
def golden():
    with open(FIXTURE) as handle:
        payload = json.load(handle)
    payload["records_json"] = json.dumps(payload["records"],
                                         sort_keys=True)
    return payload


@pytest.fixture(scope="module")
def spec(golden):
    return CampaignSpec.from_dict(golden["spec"])


def canonical(records):
    return json.dumps(records, sort_keys=True)


# -- plan validation --------------------------------------------------------

class TestSamplingPlan:
    def test_fixed_is_not_adaptive(self):
        assert not SamplingPlan.fixed().is_adaptive
        assert not SamplingPlan().is_adaptive

    def test_wilson_is_adaptive(self):
        plan = SamplingPlan.wilson(0.05)
        assert plan.is_adaptive
        assert plan.target_halfwidth == 0.05

    @pytest.mark.parametrize("kwargs", [
        {"target_halfwidth": 0.0},
        {"target_halfwidth": -0.1},
        {"target_halfwidth": 0.6},
        {"target_halfwidth": 0.05, "metric": "ipc"},
        {"target_halfwidth": 0.05, "min_replicates": 0},
        {"target_halfwidth": 0.05, "max_replicates": 0},
        {"target_halfwidth": 0.05, "min_replicates": 8,
         "max_replicates": 4},
    ])
    def test_invalid_plans_refused(self, kwargs):
        with pytest.raises(ConfigError):
            SamplingPlan.wilson(**kwargs)

    def test_round_trips_through_dict(self):
        plan = SamplingPlan.wilson(0.07, metric="sdc_rate",
                                   min_replicates=6, max_replicates=30)
        assert SamplingPlan.from_dict(plan.to_dict()) == plan
        assert SamplingPlan.from_dict(
            SamplingPlan.fixed().to_dict()) == SamplingPlan.fixed()

    def test_unknown_fields_refused(self):
        with pytest.raises(ConfigError):
            SamplingPlan.from_dict({"mode": "wilson",
                                    "target_halfwidth": 0.1,
                                    "confidence": 0.99})

    def test_options_reject_non_plan(self):
        with pytest.raises(ConfigError):
            ExecutionOptions(sampling="wilson:0.05")

    def test_options_round_trip(self):
        options = ExecutionOptions(
            workers=2, sampling=SamplingPlan.wilson(0.1))
        assert ExecutionOptions.from_dict(options.to_dict()) == options


# -- scheduler unit behaviour -----------------------------------------------

def small_spec(**overrides):
    parameters = dict(name="adaptive-unit", workloads=("gcc",),
                      models=("SS-2",), rates_per_million=(0.0,),
                      replicates=8, instructions=250)
    parameters.update(overrides)
    return CampaignSpec(**parameters)


class TestScheduler:
    def test_requires_adaptive_plan(self):
        with pytest.raises(ConfigError):
            AdaptiveScheduler(SamplingPlan.fixed(), [], {})

    def test_selects_lowest_unrun_replicate_first(self):
        trials = list(small_spec().trials())
        scheduler = AdaptiveScheduler(UNREACHABLE, trials, {})
        assert scheduler.next_trial().key == trials[0].key
        assert scheduler.next_trial().key == trials[1].key

    def test_resumed_records_count_toward_convergence(self):
        spec = small_spec()
        trials = list(spec.trials())
        # A cell already settled by 6 stored sdc-free records under a
        # loose target: nothing of it may be scheduled again.
        records = {trial.key: {"key": trial.key,
                               "trial": trial.to_dict(),
                               "outcome": "masked",
                               "faults_injected": 0}
                   for trial in trials[:6]}
        plan = SamplingPlan.wilson(
            wilson_halfwidth(0, 6) + 1e-9, metric="sdc_rate",
            min_replicates=4)
        scheduler = AdaptiveScheduler(plan, trials, records)
        assert scheduler.next_trial() is None
        trackers = list(scheduler.trackers.values())
        assert trackers[0].closed == CONVERGED
        assert scheduler.pre_converged() == trackers

    def test_max_replicates_caps_a_cell(self):
        trials = list(small_spec().trials())
        plan = SamplingPlan.wilson(1e-9, metric="sdc_rate",
                                   min_replicates=1, max_replicates=3)
        scheduler = AdaptiveScheduler(plan, trials, {})
        scheduled = []
        while True:
            trial = scheduler.next_trial()
            if trial is None:
                break
            scheduled.append(trial)
            scheduler.record_finished(
                {"key": trial.key, "trial": trial.to_dict(),
                 "outcome": "masked", "faults_injected": 0})
        assert len(scheduled) == 3
        tracker = next(iter(scheduler.trackers.values()))
        assert tracker.closed == CAPPED

    def test_exhausted_cell_closes(self):
        trials = list(small_spec(replicates=2).trials())
        scheduler = AdaptiveScheduler(UNREACHABLE, trials, {})
        for _ in range(2):
            trial = scheduler.next_trial()
            scheduler.record_finished(
                {"key": trial.key, "trial": trial.to_dict(),
                 "outcome": "masked", "faults_injected": 0})
        assert scheduler.next_trial() is None
        tracker = next(iter(scheduler.trackers.values()))
        assert tracker.closed == EXHAUSTED

    def test_coverage_floor_guards_faulty_trials_not_all_trials(self):
        """min_replicates for metric=coverage counts the fault-struck
        trials the interval is actually computed over — a cell with
        many clean trials but a 3-fault sample must stay open."""
        spec = small_spec(replicates=12)
        trials = list(spec.trials())
        plan = SamplingPlan.wilson(0.3, metric="coverage",
                                   min_replicates=4)
        scheduler = AdaptiveScheduler(plan, trials, {})
        # 4 clean trials + 3 faulty-covered ones: halfwidth(3,3) ~0.28
        # is inside the 0.3 target, but only 3 coverage observations
        # exist — under min_replicates=4 the cell must not converge.
        for faulty in (0, 0, 0, 0, 1, 1, 1):
            trial = scheduler.next_trial()
            assert trial is not None
            scheduler.record_finished(
                {"key": trial.key, "trial": trial.to_dict(),
                 "outcome": "masked", "faults_injected": faulty})
        tracker = next(iter(scheduler.trackers.values()))
        assert tracker.faulty == 3
        assert tracker.halfwidth("coverage") <= 0.3
        assert tracker.closed is None
        # A fourth covered faulty trial completes the sample.
        trial = scheduler.next_trial()
        assert trial is not None
        scheduler.record_finished(
            {"key": trial.key, "trial": trial.to_dict(),
             "outcome": "masked", "faults_injected": 1})
        assert tracker.closed == CONVERGED

    def test_widest_interval_scheduled_after_seeding(self):
        # Two cells; feed one a clean sample (narrow interval) and the
        # other a mixed one (wide interval): the next slot must go to
        # the wide cell.
        spec = small_spec(models=("SS-1", "SS-2"))
        trials = list(spec.trials())
        plan = SamplingPlan.wilson(0.01, metric="sdc_rate",
                                   min_replicates=2)
        scheduler = AdaptiveScheduler(plan, trials, {})
        by_cell = {}
        for _ in range(4):               # seed both cells to min=2
            trial = scheduler.next_trial()
            outcome = "sdc" if trial.model == "SS-1" \
                and trial.replicate == 1 else "masked"
            scheduler.record_finished(
                {"key": trial.key, "trial": trial.to_dict(),
                 "outcome": outcome, "faults_injected": 1})
            by_cell.setdefault(trial.model, []).append(trial)
        assert {model: len(ts) for model, ts in by_cell.items()} \
            == {"SS-1": 2, "SS-2": 2}
        # SS-1 now holds 1/2 sdc (widest possible), SS-2 holds 0/2.
        assert scheduler.next_trial().model == "SS-1"

    def test_pool_refills_spread_across_cells(self):
        """Scheduling with nothing finished yet (a wide worker pool's
        initial refills): in-flight trials must count against a cell's
        ranking, or the pool would drain one cell's whole pending list
        before its first result lands."""
        spec = small_spec(models=("SS-1", "SS-2"), replicates=8)
        plan = SamplingPlan.wilson(0.01, metric="sdc_rate",
                                   min_replicates=1)
        scheduler = AdaptiveScheduler(plan, list(spec.trials()), {})
        submitted = [scheduler.next_trial() for _ in range(6)]
        per_model = {model: sum(1 for t in submitted
                                if t.model == model)
                     for model in ("SS-1", "SS-2")}
        assert per_model == {"SS-1": 3, "SS-2": 3}


# -- golden equivalence with the fixed plan ---------------------------------

class TestFixedPlanEquivalence:
    """The ISSUE's headline invariant, pinned on the saved fixture."""

    def test_serial_unreachable_target_matches_fixture(self, golden,
                                                       spec):
        session = CampaignSession(
            spec, options=ExecutionOptions(sampling=UNREACHABLE))
        result = session.run()
        assert result.executed == 64
        assert canonical(result.records) == golden["records_json"]
        assert cells_to_json(session.aggregate()) == golden["cells_json"]
        summary = result.adaptive
        assert summary.total_skipped == 0
        assert summary.converged_cells == 0
        assert all(cell["closed"] == EXHAUSTED
                   for cell in summary.cells)

    def test_worker_pool_unreachable_target_matches_fixture(
            self, golden, spec):
        session = CampaignSession(
            spec, options=ExecutionOptions(workers=2,
                                           sampling=UNREACHABLE))
        result = session.run()
        assert canonical(result.records) == golden["records_json"]
        assert cells_to_json(session.aggregate()) == golden["cells_json"]

    def test_fixed_sampling_plan_is_the_noop(self, golden, spec):
        session = CampaignSession(
            spec,
            options=ExecutionOptions(sampling=SamplingPlan.fixed()))
        result = session.run()
        assert result.adaptive is None
        assert canonical(result.records) == golden["records_json"]

    def test_resume_mid_adaptation_matches_fixture(self, golden, spec,
                                                   tmp_path):
        """--resume with an adaptive plan: stored records count toward
        every cell's interval and the completed run still lands on the
        fixture byte-for-byte when the target is unreachable."""
        store = open_store(str(tmp_path / "adaptive-resume.jsonl"))
        for record in golden["records"][:29]:
            store.append(record)
        session = CampaignSession(
            spec, options=ExecutionOptions(sampling=UNREACHABLE),
            store=store)
        result = session.resume()
        assert result.skipped == 29
        assert result.executed == 35
        assert canonical(result.records) == golden["records_json"]
        assert cells_to_json(session.aggregate()) == golden["cells_json"]

    def test_completed_cells_byte_identical_under_reachable_target(
            self, golden, spec):
        """Cells that do run to completion under a *reachable* target
        produce exactly the fixed plan's records (the adaptive layer
        selects, never perturbs)."""
        plan = SamplingPlan.wilson(0.12, metric="sdc_rate",
                                   min_replicates=4)
        result = CampaignSession(
            spec, options=ExecutionOptions(sampling=plan)).run()
        fixture_by_key = {record["key"]: record
                          for record in golden["records"]}
        assert result.records       # something ran
        for record in result.records:
            assert record == fixture_by_key[record["key"]]


# -- the payoff: fewer trials at the same target ----------------------------

class TestFewerTrials:
    TARGET = 0.13

    def plan(self):
        return SamplingPlan.wilson(self.TARGET, metric="sdc_rate",
                                   min_replicates=4)

    def test_adaptive_meets_target_with_fewer_trials(self):
        spec = adaptive_demo_spec()
        fixed = CampaignSession(spec).run()
        adaptive = CampaignSession(
            spec, options=ExecutionOptions(sampling=self.plan())).run()
        # The fixed plan runs the whole grid...
        assert fixed.executed == spec.grid_size
        # ...the adaptive plan reaches the same per-cell target with
        # measurably fewer trials.
        assert adaptive.executed < fixed.executed
        summary = adaptive.adaptive
        assert summary is not None
        assert summary.converged_cells >= 1
        assert summary.total_skipped > 0
        assert summary.total_executed == adaptive.executed
        for cell in summary.cells:
            assert cell["closed"] in (CONVERGED, EXHAUSTED)
            if cell["closed"] == CONVERGED:
                assert cell["halfwidth"] <= self.TARGET

    def test_adaptive_matches_fixed_target_reach(self):
        from repro.campaign import aggregate
        spec = adaptive_demo_spec()
        fixed = CampaignSession(spec).run()
        adaptive = CampaignSession(
            spec, options=ExecutionOptions(sampling=self.plan())).run()
        fixed_hw = {
            (c.workload, c.model, c.rate_per_million, c.mix):
                wilson_halfwidth(c.counts["sdc"], c.n)
            for c in aggregate(fixed.records)}
        adaptive_hw = {
            (cell["workload"], cell["model"],
             cell["rate_per_million"], cell["mix"]): cell["halfwidth"]
            for cell in adaptive.adaptive.cells}
        assert set(adaptive_hw) == set(fixed_hw)
        for cell_key, fixed_width in fixed_hw.items():
            if fixed_width <= self.TARGET:
                assert adaptive_hw[cell_key] <= self.TARGET

    def test_worker_pool_also_converges_early(self):
        spec = adaptive_demo_spec(replicates=16)
        adaptive = CampaignSession(
            spec, options=ExecutionOptions(
                workers=2, sampling=self.plan())).run()
        assert adaptive.executed < spec.grid_size
        assert adaptive.adaptive.converged_cells >= 1

    def test_resume_after_partial_adaptive_run(self, tmp_path):
        """Kill-and-resume mid-adaptation: the resumed session counts
        stored records and still converges without re-running them."""
        spec = adaptive_demo_spec(replicates=16)
        store = open_store(str(tmp_path / "partial.jsonl"))
        first = CampaignSession(
            spec, options=ExecutionOptions(sampling=SamplingPlan.wilson(
                self.TARGET, metric="sdc_rate", min_replicates=4,
                max_replicates=5)),
            store=store).run()
        assert 0 < len(first.records) < spec.grid_size
        resumed = CampaignSession(
            spec, options=ExecutionOptions(sampling=self.plan()),
            store=store)
        result = resumed.resume()
        assert result.skipped == len(first.records)
        # Stored records were not re-executed but count in every n.
        assert result.executed == result.adaptive.total_executed
        stored = sum(cell["n"] - cell["executed"]
                     for cell in result.adaptive.cells)
        assert stored == len(first.records)
        for cell in result.adaptive.cells:
            assert cell["closed"] in (CONVERGED, EXHAUSTED)
        assert result.executed + result.skipped == len(result.records)


# -- events -----------------------------------------------------------------

class TestAdaptiveEvents:
    def test_converged_cells_emit_cell_converged_not_finished(self):
        spec = adaptive_demo_spec(replicates=16)
        plan = SamplingPlan.wilson(0.13, metric="sdc_rate",
                                   min_replicates=4)
        session = CampaignSession(
            spec, options=ExecutionOptions(sampling=plan))
        events = []
        session.subscribe(events.append)
        result = session.run()
        converged = [event.cell for event in events
                     if event.kind == CELL_CONVERGED]
        finished = [event.cell for event in events
                    if event.kind == CELL_FINISHED]
        summary = {tuple(
            (cell["workload"], cell["model"], cell.get("machine", ""),
             cell["rate_per_million"], cell["mix"],
             cell.get("sites", ""))): cell["closed"]
            for cell in result.adaptive.cells}
        assert len(converged) == result.adaptive.converged_cells
        for cell in converged:
            assert summary[cell] == CONVERGED
        # No cell may fire both events.
        assert not (set(converged) & set(finished))

    def test_convergence_on_final_replicate_fires_only_converged(self):
        """The boundary case: a target reachable only on the cell's
        very last pending replicate.  The final trial both empties the
        cell's todo count and converges it — it must emit only
        ``cell_converged``, never both events."""
        spec = adaptive_demo_spec(replicates=16)
        # sdc_rate halfwidth on an all-one-outcome cell: hw(0,15)
        # ~= 0.1019, hw(0,16) ~= 0.0968 — a 0.099 target lands exactly
        # on the sixteenth (final) replicate.
        plan = SamplingPlan.wilson(0.099, metric="sdc_rate",
                                   min_replicates=4)
        session = CampaignSession(
            spec, options=ExecutionOptions(sampling=plan))
        events = []
        session.subscribe(events.append)
        result = session.run()
        converged = {event.cell for event in events
                     if event.kind == CELL_CONVERGED}
        finished = {event.cell for event in events
                    if event.kind == CELL_FINISHED}
        assert converged, "the boundary target must converge cells"
        assert not (converged & finished)
        # The converging replicate WAS the last pending one: no
        # replicates were skipped for at least one converged cell.
        zero_skip = [cell for cell in result.adaptive.cells
                     if cell["closed"] == CONVERGED
                     and cell["skipped"] == 0]
        assert zero_skip, "target was chosen to land on the final " \
                          "replicate of some cell"
