"""Unit tests for the decoded Instruction record."""

import pytest

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op


class TestConstruction:
    def test_minimal_alu(self):
        inst = Instruction(Op.ADD, rd=1, rs1=2, rs2=3)
        assert (inst.rd, inst.rs1, inst.rs2, inst.imm) == (1, 2, 3, 0)

    def test_missing_destination_rejected(self):
        with pytest.raises(ValueError):
            Instruction(Op.ADD, rs1=1, rs2=2)

    def test_spurious_destination_rejected(self):
        with pytest.raises(ValueError):
            Instruction(Op.SW, rd=1, rs1=2, rs2=3)

    def test_missing_source_rejected(self):
        with pytest.raises(ValueError):
            Instruction(Op.ADD, rd=1, rs1=2)

    def test_nop_and_halt_take_no_operands(self):
        assert Instruction(Op.NOP).rd is None
        assert Instruction(Op.HALT).rs1 is None


class TestClassifiers:
    def test_branch_flags(self):
        branch = Instruction(Op.BNE, rs1=1, rs2=0, imm=-3)
        assert branch.is_branch and branch.is_control
        assert not branch.is_mem

    def test_jump_is_control_not_branch(self):
        jump = Instruction(Op.J, imm=5)
        assert jump.is_control and not jump.is_branch

    def test_memory_flags(self):
        load = Instruction(Op.LW, rd=1, rs1=2, imm=4)
        store = Instruction(Op.SW, rs1=2, rs2=3, imm=4)
        assert load.is_load and load.is_mem and not load.is_store
        assert store.is_store and store.is_mem and not store.is_load

    def test_halt_flag(self):
        assert Instruction(Op.HALT).is_halt


class TestValueSemantics:
    def test_equality_and_hash(self):
        a = Instruction(Op.ADDI, rd=1, rs1=2, imm=7)
        b = Instruction(Op.ADDI, rd=1, rs1=2, imm=7)
        c = Instruction(Op.ADDI, rd=1, rs1=2, imm=8)
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_repr_uses_disassembly(self):
        inst = Instruction(Op.ADDI, rd=1, rs1=0, imm=42)
        assert "addi" in repr(inst)
