"""The HTTP front-end, end to end over real sockets.

Runs ``repro-ft serve`` as a subprocess and drives it through
:class:`~repro.service.loadgen.ServiceClient` — covering submission,
status, SSE streaming, result fetch, cancellation and error mapping.

The headline fault-injection test (a PR satellite) SIGKILLs the whole
service process group mid-job, restarts the service on the same data
dir, and asserts the resumed job completes to records key-for-key
identical to an uninterrupted in-process run — the restart-resume
promise, proven under the least graceful failure there is.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.campaign import CampaignSession, CampaignSpec
from repro.errors import ServiceError
from repro.service.loadgen import ServiceClient

SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src")


def spec_dict(name="served", replicates=2, instructions=300):
    return CampaignSpec(name=name, workloads=("gcc",),
                        models=("SS-1",),
                        rates_per_million=(0.0, 3000.0),
                        replicates=replicates,
                        instructions=instructions).to_dict()


class ServeProcess:
    """A ``repro-ft serve`` subprocess bound to an ephemeral port."""

    def __init__(self, data_dir, slots=2, extra=()):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + \
            env.get("PYTHONPATH", "")
        self.data_dir = str(data_dir)
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro.harness.cli", "serve",
             "--data-dir", self.data_dir, "--port", "0",
             "--slots", str(slots)] + list(extra),
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            start_new_session=True)
        self.client = self._wait_ready()

    def _wait_ready(self, timeout=30.0):
        service_file = os.path.join(self.data_dir, "service.json")
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.process.poll() is not None:
                raise AssertionError(
                    "serve exited early:\n%s"
                    % self.process.stdout.read().decode())
            try:
                with open(service_file) as handle:
                    url = json.load(handle)["url"]
                client = ServiceClient(url, timeout=30.0)
                client.health()
                return client
            except Exception:
                time.sleep(0.1)
        raise AssertionError("serve did not come up in %.0fs" % timeout)

    def sigkill_group(self):
        os.killpg(os.getpgid(self.process.pid), signal.SIGKILL)
        self.process.wait(timeout=10)

    def terminate(self, timeout=30.0):
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGTERM)
            try:
                self.process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                self.sigkill_group()
        self.process.stdout.close()

    def wait_state(self, job_id, states, timeout=120.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            summary = self.client.job(job_id)
            if summary["state"] in states:
                return summary
            time.sleep(0.05)
        raise AssertionError("job %s stuck in %r" %
                             (job_id, self.client.job(job_id)["state"]))


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    serve = ServeProcess(tmp_path_factory.mktemp("svc"))
    yield serve
    serve.terminate()


class TestHttpApi:
    def test_health(self, server):
        health = server.client.health()
        assert health["status"] == "ok"
        assert health["slots"] == 2

    def test_submit_run_events_result(self, server):
        submitted = server.client.submit("alice", spec_dict("api1"))
        assert submitted["state"] == "queued"
        assert submitted["total"] == 4
        final = server.wait_state(submitted["id"], ("done",))
        assert final["done"] == 4

        # SSE replay of the finished job's whole stream.
        events = server.client.stream_events(submitted["id"],
                                             follow=False)
        kinds = [event["kind"] for event in events]
        assert kinds[0] == "job_queued"
        assert kinds.count("trial_finished") == 4
        assert "campaign_finished" in kinds
        assert kinds[-1] == "job_finished"
        # Live follow mode drains to the same stream end.
        followed = server.client.stream_events(submitted["id"],
                                               follow=True, timeout=30)
        assert [event["kind"] for event in followed] == kinds

        result = server.client.result(submitted["id"], records=True)
        plain = CampaignSession(
            CampaignSpec.from_dict(spec_dict("api1"))).run()
        assert json.dumps(result["records"], sort_keys=True) \
            == json.dumps(plain.records, sort_keys=True)
        assert result["cells"]
        assert result["records_stored"] == 4

    def test_job_listing_filters_by_tenant(self, server):
        submitted = server.client.submit("carol", spec_dict("api2"))
        server.wait_state(submitted["id"], ("done",))
        ids = [job["id"] for job in server.client.jobs("carol")]
        assert submitted["id"] in ids
        assert all(job["tenant"] == "carol"
                   for job in server.client.jobs("carol"))

    def test_cancel_then_terminal(self, server):
        submitted = server.client.submit(
            "alice", spec_dict("api3", replicates=40,
                               instructions=1_500))
        cancelled = server.client.cancel(submitted["id"])
        assert cancelled["state"] in ("queued", "running",
                                      "cancelled")
        final = server.wait_state(submitted["id"],
                                  ("cancelled", "done"))
        assert final["state"] == "cancelled"

    def test_tenants_report(self, server):
        report = server.client.tenants()
        assert report["slots"] == 2
        assert "alice" in report["tenants"]
        entry = report["tenants"]["alice"]
        assert entry["trials_executed"] > 0
        assert "busy_seconds" in entry and "demand_seconds" in entry

    def test_error_mapping(self, server):
        client = server.client
        with pytest.raises(ServiceError, match="404"):
            client.job("job-missing")
        with pytest.raises(ServiceError, match="404"):
            client.result("job-missing")
        status, _payload = client._request("GET", "/nowhere")
        assert status == 404
        status, payload = client._request("POST", "/api/jobs",
                                          {"tenant": "alice"})
        assert status == 400 and "spec" in payload["error"]
        status, _payload = client._request("POST", "/api/jobs",
                                           {"tenant": "alice",
                                            "spec": spec_dict(),
                                            "mystery": 1})
        assert status == 400
        status, _payload = client._request("DELETE", "/api/jobs")
        assert status == 405


class TestKillRecovery:
    def test_sigkill_mid_job_then_restart_resumes_identically(
            self, tmp_path):
        data_dir = tmp_path / "svc"
        big = spec_dict("killme", replicates=24, instructions=1_500)
        first = ServeProcess(data_dir, slots=2)
        try:
            submitted = first.client.submit("alice", big)
            job_id = submitted["id"]
            deadline = time.monotonic() + 90
            while first.client.job(job_id)["done"] < 3:
                assert time.monotonic() < deadline, \
                    "job made no progress before the kill"
                time.sleep(0.05)
        except BaseException:
            first.terminate()
            raise
        # The least graceful failure: SIGKILL the whole process group
        # mid-campaign. No drain, no flush, no goodbye.
        first.sigkill_group()

        store_path = os.path.join(str(data_dir), "jobs", job_id,
                                  "store.jsonl")
        partial = sum(1 for line in open(store_path) if line.strip())
        assert partial >= 3

        second = ServeProcess(data_dir, slots=2)
        try:
            recovered = second.client.job(job_id)
            assert recovered["state"] in ("queued", "running", "done")
            final = second.wait_state(job_id, ("done",))
            assert final["done"] == 24 * 2
            served = second.client.result(job_id,
                                          records=True)["records"]
            plain = CampaignSession(
                CampaignSpec.from_dict(big)).run()
            # Key-for-key identical to a run that was never killed.
            assert [record["key"] for record in served] \
                == [record["key"] for record in plain.records]
            assert json.dumps(served, sort_keys=True) \
                == json.dumps(plain.records, sort_keys=True)
            kinds = [event["kind"] for event in
                     second.client.stream_events(job_id, follow=False)]
            assert "job_resumed" in kinds
        finally:
            second.terminate()
