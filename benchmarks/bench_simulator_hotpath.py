"""Simulator hot-path benchmark: optimized engine vs frozen reference.

Runs the same measurement as ``repro-ft bench``: the single-simulation
engine grid plus the Figure-6 campaign grid (fpppp on the R=2 and R=3
machines across the paper's fault-rate ladder, 64 trials), each
executed through both the unoptimized (pre-overhaul reference engine,
naive per-trial golden classification) and the optimized path (cycle
skipping, decoded-program cache, memoized golden traces, fault-free
result reuse).  Both wall-clock numbers land in
``BENCH_simulator.json`` at the repository root, so the speedup
trajectory is tracked across PRs.

Hard requirements asserted here:

* the two paths produce byte-identical campaign records and
  byte-identical per-run PipelineStats (``run_bench`` raises
  ``BenchDivergence`` otherwise);
* the optimized campaign path clears a conservative speedup floor
  (the recorded number on the development host is well above 3x; the
  assert uses a margin because shared runners are noisy).
"""

import json
import os

from repro.harness.bench import format_bench_summary, run_bench

#: Regression floor for the campaign-path speedup.  The measured value
#: is recorded in BENCH_simulator.json (>= 3x on the development
#: host); the assert keeps headroom for noisy shared runners.
MIN_CAMPAIGN_SPEEDUP = float(os.environ.get(
    "BENCH_MIN_CAMPAIGN_SPEEDUP", "2.0"))

BENCH_OUT = os.path.join(os.path.dirname(__file__), os.pardir,
                         "BENCH_simulator.json")


def bench_simulator_hotpath(benchmark, record_table):
    payload = benchmark.pedantic(
        lambda: run_bench(quick=False, out=os.path.abspath(BENCH_OUT)),
        rounds=1, iterations=1)

    summary = format_bench_summary(payload)
    record_table("simulator_hotpath", summary)

    campaign = payload["campaign"]
    # run_bench already raised BenchDivergence on any mismatch; assert
    # the recorded flags anyway so the criteria are visible here.
    # Engine rows are recorded, never asserted — a single short
    # simulation is too noise-prone on shared runners; only the
    # campaign-level speedup (long runs, best-of-N) carries a floor.
    assert campaign["identical_records"] is True
    assert campaign["trials"] == 64
    assert len(payload["engine"]["rows"]) == 8
    assert campaign["speedup"] >= MIN_CAMPAIGN_SPEEDUP, \
        "campaign speedup %.2fx below the %.2fx floor" \
        % (campaign["speedup"], MIN_CAMPAIGN_SPEEDUP)

    # The JSON artefact documents both sides of the measurement.
    with open(os.path.abspath(BENCH_OUT)) as handle:
        persisted = json.load(handle)
    assert persisted["campaign"]["reference_seconds"] > 0
    assert persisted["campaign"]["optimized_seconds"] > 0
