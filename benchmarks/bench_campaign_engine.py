"""Campaign engine at statistical scale: a 64-trial Monte Carlo grid.

Runs the (gcc, go) x (SS-1, SS-2) x (0, 1k, 10k, 30k faults/M) grid with
4 replicates per cell through the campaign path — the scaled-up version
of the paper's Figure-6 methodology, now with outcome classification and
Wilson confidence intervals — and demonstrates that the process-pool
engine beats serial wall-clock while producing byte-identical results.

Shape criteria:

* SS-2 commits no corrupted state at rates within the paper's
  single-fault model (up to 10k faults/M here): coverage 1.0, zero
  SDC.  At 30k faults/M (~3% of instructions) the lambda^2 escape
  window opens — both copies of one branch can be struck, and branch
  corruption is a deterministic taken<->not-taken flip, so the copies
  agree on the same wrong next-PC and R=2 cross-checking is blind to
  it — so coverage there is only required to stay high, not perfect;
* SS-1 has no detection, so at high rates it leaks SDCs or dies;
* the redundant machine's IPC degrades with the fault rate (recovery
  costs cycles) — the Figure-6 trend through the campaign engine;
* workers=4 is faster than serial (on multi-core hosts) and
  bit-identical to it everywhere.
"""

import os
import time

from repro.campaign import (CampaignSession, CampaignSpec,
                            ExecutionOptions, aggregate, cells_to_json)
from repro.harness.report import format_campaign_table

SPEC = CampaignSpec(
    name="bench-campaign",
    workloads=("gcc", "go"),
    models=("SS-1", "SS-2"),
    rates_per_million=(0.0, 1_000.0, 10_000.0, 30_000.0),
    replicates=4,
    instructions=1_500,
)

WORKERS = 4


def bench_campaign_engine(benchmark, record_table):
    assert SPEC.grid_size == 64

    serial_start = time.monotonic()
    serial = CampaignSession(SPEC).run()
    serial_elapsed = time.monotonic() - serial_start

    parallel_options = ExecutionOptions(workers=WORKERS)
    parallel_start = time.monotonic()
    parallel = benchmark.pedantic(
        lambda: CampaignSession(SPEC, options=parallel_options).run(),
        rounds=1, iterations=1)
    parallel_elapsed = time.monotonic() - parallel_start

    cells = aggregate(serial.records)
    table = format_campaign_table(cells)
    cores = len(os.sched_getaffinity(0))
    timing = ("serial %.2fs, %d workers %.2fs (speedup %.2fx on %d "
              "cores)"
              % (serial_elapsed, WORKERS, parallel_elapsed,
                 serial_elapsed / parallel_elapsed, cores))
    record_table("campaign_engine", table + "\n\n" + timing)

    # Parallel execution is a pure wall-clock optimisation: identical
    # records, identical aggregate, less time (given cores to use; on
    # a single-core host only the overhead bound is checkable).
    assert serial.records == parallel.records
    assert cells_to_json(aggregate(parallel.records)) \
        == cells_to_json(cells)
    if cores >= 2:
        assert parallel_elapsed < serial_elapsed
    else:
        assert parallel_elapsed < 1.5 * serial_elapsed

    by_cell = {(c.workload, c.model, c.rate_per_million): c
               for c in cells}
    for cell in cells:
        assert cell.n == 4
        if cell.model == "SS-2":
            if cell.rate_per_million <= 10_000.0:
                # The paper's design point: full detection coverage
                # within the single-fault model.
                assert cell.counts["sdc"] == 0
                if cell.faulty_trials:
                    assert cell.coverage == 1.0
            else:
                # Extreme-rate cell: the lambda^2 common-mode window
                # may leak, but detection still dominates.
                assert cell.coverage >= 0.5
        if cell.rate_per_million >= 10_000.0:
            assert cell.faulty_trials > 0, \
                "no faults struck %s at %g/M" % (cell.workload,
                                                 cell.rate_per_million)
    # SS-1 leaks: pooled over both workloads at the heavy rates, some
    # trial ends in silent corruption or a crash/timeout.
    leaks = sum(by_cell[(w, "SS-1", r)].counts["sdc"]
                + by_cell[(w, "SS-1", r)].counts["timeout"]
                for w in ("gcc", "go")
                for r in (10_000.0, 30_000.0))
    assert leaks > 0
    # Figure-6 trend via the campaign path: recovery work costs IPC.
    for workload in ("gcc", "go"):
        clean = by_cell[(workload, "SS-2", 0.0)].mean_ipc
        stormy = by_cell[(workload, "SS-2", 30_000.0)].mean_ipc
        assert stormy < clean
        # Recovery penalty Y is observed and plausible (paper: ~30
        # cycles at full budgets; small windows see the same order).
        heavy = by_cell[(workload, "SS-2", 30_000.0)]
        assert heavy.mean_recovery_penalty > 0
