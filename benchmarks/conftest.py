"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper, prints it,
and also writes it to ``benchmarks/results/<name>.txt`` so the
reproduced artefacts survive the run.
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture
def record_table():
    """Persist and echo one reproduced table."""
    def _record(name, table):
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, name + ".txt")
        with open(path, "w") as handle:
            handle.write(table + "\n")
        print()
        print(table)
        return path
    return _record
