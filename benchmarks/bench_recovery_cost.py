"""Section 5.3 in-text claim: rewind recovery costs ~tens of cycles.

"Typical recovery costs observed in fpppp simulations are around 30
cycles" — we inject faults at a moderate rate into the fpppp workload
on SS-2 and measure the observed per-rewind penalty (cycles from
detection to the next successful commit), plus the end-to-end cost
per fault including pipeline refill effects.
"""

from repro.core.faults import FaultConfig
from repro.harness.experiment import run_on_model
from repro.models.presets import ss2
from repro.workloads.generator import build_workload

INSTRUCTIONS = 8_000
RATE = 300.0  # faults per million instructions per copy


def bench_recovery_cost(benchmark, record_table):
    program = build_workload("fpppp")

    def run():
        clean = run_on_model(program, ss2(),
                             max_instructions=INSTRUCTIONS)
        faulty = run_on_model(program, ss2(),
                              max_instructions=INSTRUCTIONS,
                              fault_config=FaultConfig(
                                  rate_per_million=RATE, seed=31))
        return clean, faulty

    clean, faulty = benchmark.pedantic(run, rounds=1, iterations=1)
    per_fault = 0.0
    if faulty.rewinds:
        per_fault = ((faulty.cycles - clean.cycles) / faulty.rewinds)
    table = "\n".join([
        "Recovery cost, fpppp on SS-2 at %.0f faults/M-instr" % RATE,
        "  fault-free cycles        %8d" % clean.cycles,
        "  faulty cycles            %8d" % faulty.cycles,
        "  rewinds                  %8d" % faulty.rewinds,
        "  observed penalty Y       %8.1f cycles (detect -> commit)"
        % faulty.avg_recovery_penalty,
        "  end-to-end cost          %8.1f cycles per fault" % per_fault,
        "  IPC impact               %8.2f%%"
        % (100 * (1 - faulty.ipc / clean.ipc)),
    ])
    record_table("recovery_cost", table)

    assert faulty.rewinds >= 3
    # "On the order of tens of cycles" (paper observed ~30).
    assert 5 <= faulty.avg_recovery_penalty <= 100
    # Negligible throughput impact at realistic rates (Section 5.3).
    assert faulty.ipc > 0.90 * clean.ipc
