"""Figure 4: the Figure-3 sweep with Y = 2000 (coarse-grain recovery).

Asserts the paper's two observations: (a) for any reasonable fault
frequency Y has only a minimal effect on average IPC; (b) with a large
Y the collapse happens ~2 orders of magnitude earlier, which is what
rules coarse-grain checkpointing out of fine-grain real-time use.
"""

from repro.analytical.figures import (figure3_series, figure4_series,
                                      format_figure_table)
from repro.harness.report import ascii_chart


def bench_figure4_analytical(benchmark, record_table):
    series = benchmark.pedantic(figure4_series, rounds=1, iterations=1)
    table = format_figure_table(
        series, "Figure 4: IPC vs fault frequency (Y=2000)")
    chart = ascii_chart(
        [("R=2", "2", [(p.lam, p.ipc_r2) for p in series]),
         ("R=3 rewind", "3",
          [(p.lam, p.ipc_r3_rewind) for p in series]),
         ("R=3 majority", "m",
          [(p.lam, p.ipc_r3_majority) for p in series])],
        title="Figure 4 (Y=2000)")
    record_table("figure4_analytical", table + "\n\n" + chart)

    fig3 = {p.lam: p for p in figure3_series()}
    fig4 = {p.lam: p for p in series}
    # (a) At reasonable rates (<= 1e-6) the curves are indistinguishable.
    for lam in fig4:
        if lam <= 1e-6:
            assert abs(fig4[lam].ipc_r2 - fig3[lam].ipc_r2) < 0.005
    # (b) At 1e-4 the Y=2000 design has already lost >= 15% throughput
    # while Y=20 is still within 1% of its plateau.
    assert fig4[1e-4].ipc_r2 < 0.45
    assert fig3[1e-4].ipc_r2 > 0.495
