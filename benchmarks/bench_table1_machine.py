"""Table 1: baseline superscalar machine parameters.

Regenerates the paper's machine-parameter table directly from the SS-1
preset, asserting every Table-1 value.  The benchmark times a full
(small) baseline simulation so the harness also tracks simulator speed
on the Table-1 machine.
"""

from repro.harness.report import format_machine_table
from repro.models.presets import baseline_config, ss1
from repro.uarch.processor import Processor
from repro.workloads.generator import build_workload

INSTRUCTIONS = 4_000


def bench_table1_machine(benchmark, record_table):
    config = baseline_config()

    def run():
        processor = Processor(build_workload("gcc"),
                              config=ss1().config, ft=ss1().ft)
        processor.run(max_instructions=INSTRUCTIONS)
        return processor

    processor = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_machine_table(config)
    record_table("table1_machine", table)

    # Table 1 values, verbatim.
    assert config.fetch_width == 8
    assert config.rob_size == 128 and config.lsq_size == 64
    assert config.branch.bimodal_size == 2048
    assert config.branch.l2_size == 1024
    assert config.branch.history_bits == 10
    assert config.hierarchy.il1.size_bytes == 64 * 1024
    assert config.hierarchy.il1.assoc == 2
    assert config.hierarchy.dl1.size_bytes == 32 * 1024
    assert config.hierarchy.dl1.assoc == 2
    assert config.mem_ports == 2
    assert config.hierarchy.l2.size_bytes == 512 * 1024
    assert config.hierarchy.l2.assoc == 4
    assert (config.int_alu, config.int_mult) == (4, 2)
    assert (config.fp_add, config.fp_mult) == (2, 1)
    assert processor.stats.instructions >= INSTRUCTIONS
