"""Table 2: dynamic instruction mix of the 11 benchmarks.

Generates every synthetic workload, measures its dynamic mix on the
functional simulator and checks each category against the paper's
Table-2 percentages (the calibration target of the workload generator).
"""

import pytest

from repro.harness.experiment import table2_rows
from repro.workloads.mix import format_mix_table
from repro.workloads.profiles import BENCHMARK_ORDER, get_profile

INSTRUCTIONS = 20_000
TOLERANCE = 2.5  # percentage points per category


def bench_table2_mix(benchmark, record_table):
    rows = benchmark.pedantic(
        lambda: table2_rows(instructions=INSTRUCTIONS),
        rounds=1, iterations=1)
    record_table("table2_mix", format_mix_table(rows))

    assert [row.name for row in rows] == list(BENCHMARK_ORDER)
    for row in rows:
        targets = get_profile(row.name).mix_targets()
        for measured, target in zip(row.as_tuple(), targets):
            assert measured == pytest.approx(target, abs=TOLERANCE), \
                "%s: measured %s vs Table-2 %s" % (row.name,
                                                   row.as_tuple(),
                                                   targets)
