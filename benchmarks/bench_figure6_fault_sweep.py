"""Figure 6: simulated IPC vs fault frequency for fpppp.

R=2 (rewind) against R=3 (2-of-3 majority election) on the Table-1
datapath, with the fault injector sweeping faults-per-million-
instructions.  Shape criteria from the paper:

* both designs are flat at realistic rates;
* R=2 starts clearly above R=3 (less redundancy = more throughput);
* R=2 collapses once rewind penalties dominate, while the majority
  design keeps committing through single-copy faults, so the curves
  cross only at an extremely high fault frequency.
"""

from repro.harness.experiment import figure6_points
from repro.harness.report import ascii_chart, format_figure6_table

INSTRUCTIONS = 6_000
RATES = (0.0, 100.0, 1000.0, 10_000.0, 60_000.0, 200_000.0)


def bench_figure6_fault_sweep(benchmark, record_table):
    points = benchmark.pedantic(
        lambda: figure6_points(benchmark="fpppp", rates=RATES,
                               instructions=INSTRUCTIONS),
        rounds=1, iterations=1)
    chart = ascii_chart(
        [("R=2", "2", [(max(p.rate_per_million, 10.0),
                        p.results["R=2"].ipc) for p in points]),
         ("R=3 majority", "3", [(max(p.rate_per_million, 10.0),
                                 p.results["R=3"].ipc)
                                for p in points])],
        title="Figure 6: IPC vs faults/M-instr (fpppp)")
    record_table("figure6_fault_sweep",
                 format_figure6_table(points) + "\n\n" + chart)

    by_rate = {p.rate_per_million: p for p in points}
    clean = by_rate[0.0]
    # Fault-free: R=2 clearly outperforms R=3.
    assert clean.results["R=2"].ipc > 1.15 * clean.results["R=3"].ipc
    # Flat at realistic rates (100 faults/M is already ~10^6 times any
    # physical soft-error rate), and only mildly dented at 1000/M.
    assert by_rate[100.0].results["R=2"].ipc > \
        0.97 * clean.results["R=2"].ipc
    assert by_rate[1000.0].results["R=2"].ipc > \
        0.85 * clean.results["R=2"].ipc
    # R=3 with majority election rides out rates that already dent R=2:
    # at 10k faults/M it commits through single-copy strikes.
    assert by_rate[10_000.0].results["R=3"].ipc > \
        0.90 * clean.results["R=3"].ipc
    assert by_rate[10_000.0].results["R=3"].majority_commits > 0
    # R=2 collapses under rewind pressure at extreme rates...
    extreme = by_rate[200_000.0]
    assert extreme.results["R=2"].ipc < 0.5 * clean.results["R=2"].ipc
    # ...which is where the curves cross (paper: "much higher fault
    # frequency than what our design is intended for").
    assert extreme.results["R=3"].ipc > extreme.results["R=2"].ipc
    # Recovery happens: rewinds observed.
    assert by_rate[10_000.0].results["R=2"].rewinds > 0
