"""Section 3.2 ablation: the common-physical-register-pool variant.

"When a physical register file is used for both committed registers and
rename registers, corroborating the results of different threads
requires R additional register file read accesses per retiring
instruction ... the performance of fault-tolerant superscalar derived
from a microarchitecture with a common physical register pool will be
slightly lower."  We model exactly that commit-bandwidth tax and verify
the predicted direction and its small magnitude.
"""

from repro.harness.experiment import physreg_ablation

INSTRUCTIONS = 6_000
BENCHMARKS = ("gcc", "vortex", "go", "fpppp")


def bench_physreg_ablation(benchmark, record_table):
    rows = benchmark.pedantic(
        lambda: physreg_ablation(benchmarks=BENCHMARKS,
                                 instructions=INSTRUCTIONS),
        rounds=1, iterations=1)
    lines = ["%-8s %12s %12s %8s" % ("bench", "split IPC", "shared IPC",
                                     "delta")]
    for name, split_ipc, shared_ipc in rows:
        delta = 100 * (1 - shared_ipc / split_ipc)
        lines.append("%-8s %12.3f %12.3f %7.1f%%"
                     % (name, split_ipc, shared_ipc, delta))
    record_table("physreg_ablation", "\n".join(lines))

    for name, split_ipc, shared_ipc in rows:
        # "Slightly lower": never faster, never catastrophically slower.
        assert shared_ipc <= split_ipc * 1.01, name
        assert shared_ipc >= split_ipc * 0.60, name
    # At least one benchmark visibly pays the commit-bandwidth tax.
    assert any(shared < split * 0.995
               for _, split, shared in rows)
