"""Figure 3: analytical IPC vs fault frequency with Y = 20 cycles.

Regenerates the three curves (R=2 rewind, R=3 rewind, R=3 majority)
with IPC1 = B normalised to 1, and asserts the figure's structural
properties: flat plateaus at 1/2 and 1/3, collapse when 1/lambda nears
Y, and the late R=2 / R=3-majority crossover.
"""

from repro.analytical.figures import (figure3_series,
                                      format_figure_table)
from repro.analytical.model import crossover_frequency
from repro.harness.report import ascii_chart


def bench_figure3_analytical(benchmark, record_table):
    series = benchmark.pedantic(figure3_series, rounds=1, iterations=1)
    table = format_figure_table(
        series, "Figure 3: IPC vs fault frequency (Y=20, IPC1=B=1)")
    chart = ascii_chart(
        [("R=2", "2", [(p.lam, p.ipc_r2) for p in series]),
         ("R=3 rewind", "3",
          [(p.lam, p.ipc_r3_rewind) for p in series]),
         ("R=3 majority", "m",
          [(p.lam, p.ipc_r3_majority) for p in series])],
        title="Figure 3 (Y=20)")
    record_table("figure3_analytical", table + "\n\n" + chart)

    by_lam = {p.lam: p for p in series}
    low = min(by_lam)
    # Plateaus: IPC_2 = 1/2, IPC_3 = 1/3 at negligible fault rates.
    assert abs(by_lam[low].ipc_r2 - 0.5) < 1e-4
    assert abs(by_lam[low].ipc_r3_rewind - 1 / 3) < 1e-4
    # R=2 stays within 2% of its plateau until lambda ~ 1e-4
    # (two orders of magnitude from 1/Y = 0.05).
    for point in series:
        if point.lam <= 1e-4:
            assert point.ipc_r2 > 0.49
    # ... and collapses at the top of the sweep.
    high = max(by_lam)
    assert by_lam[high].ipc_r2 < 0.25
    # Majority stays flat far longer than rewind-only designs.
    assert by_lam[high].ipc_r3_majority > by_lam[high].ipc_r3_rewind
    # The crossover exists and sits at a very high fault rate.
    crossing = crossover_frequency(0.5, 1 / 3, 20)
    assert crossing is not None and crossing > 1e-3
