"""Figure 5: steady-state IPC of SS-1 vs Static-2 vs SS-2.

The paper's headline result.  Shape criteria asserted:

* SS-2's IPC penalty spans roughly 2-45% with an average near 30%
  (paper: 2-45%, 30-32% average);
* ammp, go and vpr suffer the least penalty (ILP-/latency-limited);
* Static-2 performs comparably to SS-2 overall but clearly wins on
  fpppp, swim and art thanks to its extra FPMult/Div unit.
"""

from repro.harness.experiment import figure5_rows
from repro.harness.report import format_figure5_table
from repro.workloads.profiles import BENCHMARK_ORDER

INSTRUCTIONS = 12_000


def bench_figure5_ipc(benchmark, record_table):
    rows = benchmark.pedantic(
        lambda: figure5_rows(instructions=INSTRUCTIONS),
        rounds=1, iterations=1)
    record_table("figure5_ipc", format_figure5_table(rows))

    assert [row.benchmark for row in rows] == list(BENCHMARK_ORDER)
    penalties = {row.benchmark: row.ss2_penalty for row in rows}

    # Penalty range and average (paper: 2-45%, average ~30%).
    assert all(-0.02 <= p <= 0.50 for p in penalties.values()), penalties
    average = sum(penalties.values()) / len(penalties)
    assert 0.22 <= average <= 0.40, average
    assert max(penalties.values()) >= 0.35
    assert min(penalties.values()) <= 0.10

    # ammp, go, vpr suffer less than every other benchmark.
    lenient = {"ammp", "go", "vpr"}
    worst_lenient = max(penalties[name] for name in lenient)
    best_strict = min(penalty for name, penalty in penalties.items()
                      if name not in lenient)
    assert worst_lenient < best_strict, penalties

    # Static-2 ~ SS-2 overall, but clearly ahead on fpppp/swim/art.
    # (On the most memory-bound codes SS-2 pulls ahead instead: cache
    # ports are shared, not replicated — the dynamic datapath's edge.)
    for row in rows:
        ratio = row.ipc("Static-2") / row.ipc("SS-2")
        if row.benchmark in ("fpppp", "swim", "art"):
            assert ratio > 1.05, (row.benchmark, ratio)
        else:
            assert 0.75 < ratio < 1.15, (row.benchmark, ratio)
