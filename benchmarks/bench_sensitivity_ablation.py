"""Section 5.2 sensitivity study: FU count and RUU size scaling.

The paper explains Figure 5 by testing each benchmark's "sensitivity to
varying numbers of functional units (0.5x, 2x, infinite) and RUU sizes
(0.5x, 2x, infinite)": benchmarks with high redundancy penalties are
already resource-limited at baseline, while go/vpr are "almost
insensitive to the amount of resources available" and ammp is limited
by divisions on its critical path.
"""

from repro.harness.experiment import sensitivity_rows
from repro.harness.report import format_sensitivity_table

INSTRUCTIONS = 5_000
BENCHMARKS = ("gcc", "vortex", "go", "bzip", "vpr", "ammp", "fpppp",
              "art")


def bench_sensitivity_ablation(benchmark, record_table):
    rows = benchmark.pedantic(
        lambda: sensitivity_rows(benchmarks=BENCHMARKS,
                                 instructions=INSTRUCTIONS),
        rounds=1, iterations=1)
    record_table("sensitivity_ablation", format_sensitivity_table(rows))

    by_name = {row.benchmark: row for row in rows}

    # go and vpr: almost insensitive to resources (ILP-limited).
    for name in ("go", "vpr", "ammp"):
        row = by_name[name]
        assert row.fu_ipc["2x"] < 1.12 * row.base_ipc, name
        assert row.fu_ipc["inf"] < 1.15 * row.base_ipc, name

    # The high-penalty benchmarks are FU-limited: more units help.
    for name in ("gcc", "vortex", "bzip", "fpppp"):
        row = by_name[name]
        assert row.fu_ipc["2x"] > 1.10 * row.base_ipc, \
            (name, row.base_ipc, row.fu_ipc)

    # art is a hybrid: its baseline is partially bound by the FP
    # dependency chain (doubling units barely moves SS-1), yet its
    # redundancy penalty still comes from the single FPMult/Div unit.
    art = by_name["art"]
    assert art.fu_ipc["2x"] >= art.base_ipc * 0.98

    # Halving resources hurts everyone at least a little.
    for row in rows:
        assert row.fu_ipc["0.5x"] <= row.base_ipc * 1.02, row.benchmark

    # Baseline is never faster than the infinite-resource machine.
    for row in rows:
        assert row.fu_ipc["inf"] >= row.base_ipc * 0.98, row.benchmark
